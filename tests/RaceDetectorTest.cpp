//===- tests/RaceDetectorTest.cpp - Static guest race check ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/RaceDetector.h"

#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

/// The classic seeded race: bump() writes F0 with no lock while total()
/// reads it under one.
Module buildRacyCounter() {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder B("bump", 1, 1);
    B.load(0).load(0).getField(0).constant(1).add().putField(0); // pc 0..5
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("total", 1, 1);
    B.load(0).syncEnter();
    B.load(0).getField(0); // pc 2, 3 — locked read
    B.syncExit();
    B.ret();
    M.addMethod(B.take());
  }
  return M;
}

} // namespace

TEST(RaceDetector, FlagsSeededUnsynchronizedWrite) {
  Module M = buildRacyCounter();
  std::vector<RaceWarning> W = detectRaces(M);
  ASSERT_FALSE(W.empty());
  // Deterministic order: bump's unlocked read (pc 2) before its write
  // (pc 5).
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0].MethodId, 0u);
  EXPECT_EQ(W[0].Pc, 2u);
  EXPECT_EQ(W[0].Kind, AccessKind::Read);
  EXPECT_EQ(W[1].MethodId, 0u);
  EXPECT_EQ(W[1].Pc, 5u);
  EXPECT_EQ(W[1].Kind, AccessKind::Write);
  EXPECT_EQ(W[1].Space, FieldSpace::IntField);
  EXPECT_EQ(W[1].Index, 0);
  // Evidence points at the locked access in total().
  EXPECT_EQ(W[1].LockedMethodId, 1u);
  EXPECT_EQ(W[1].LockedPc, 3u);

  std::string Msg = renderRaceWarning(M, W[1]);
  EXPECT_NE(Msg.find("bump pc 5"), std::string::npos);
  EXPECT_NE(Msg.find("unlocked write of F[0]"), std::string::npos);
  EXPECT_NE(Msg.find("total:3"), std::string::npos);
}

TEST(RaceDetector, AllAccessesLockedIsClean) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder B("set", 1, 1);
    B.load(0).syncEnter();
    B.load(0).constant(1).putField(0);
    B.syncExit().constant(0).ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("get", 1, 1);
    B.load(0).syncEnter();
    B.load(0).getField(0);
    B.syncExit();
    B.ret();
    M.addMethod(B.take());
  }
  EXPECT_TRUE(detectRaces(M).empty());
}

TEST(RaceDetector, NoLockedAccessMeansNoEvidence) {
  // Entirely unsynchronized traffic: racy or not, there is no lockset
  // discipline to contradict — the pass stays quiet (documented scope).
  Module M;
  M.NumStatics = 0;
  MethodBuilder B("bump", 1, 1);
  B.load(0).load(0).getField(0).constant(1).add().putField(0);
  B.constant(0).ret();
  M.addMethod(B.take());
  EXPECT_TRUE(detectRaces(M).empty());
}

TEST(RaceDetector, ReadOnlySharingIsClean) {
  // Locked and unlocked reads of a never-written field cannot race.
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder B("lockedRead", 1, 1);
    B.load(0).syncEnter();
    B.load(0).getField(2);
    B.syncExit();
    B.ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("plainRead", 1, 1);
    B.load(0).getField(2).ret();
    M.addMethod(B.take());
  }
  EXPECT_TRUE(detectRaces(M).empty());
}

TEST(RaceDetector, FreshObjectInitializationIsClean) {
  // The constructor pattern: fill a brand-new object without a lock, then
  // hand it back. The escape analysis proves the writes thread-local, so
  // the locked traffic to the same field indices elsewhere is no
  // contradiction.
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder B("make", 0, 1);
    B.newObject().store(0);
    B.load(0).constant(7).putField(0); // unlocked write to fresh object
    B.load(0).ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("lockedGet", 1, 1);
    B.load(0).syncEnter();
    B.load(0).getField(0);
    B.syncExit();
    B.ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("lockedSet", 1, 1);
    B.load(0).syncEnter();
    B.load(0).constant(9).putField(0);
    B.syncExit().constant(0).ret();
    M.addMethod(B.take());
  }
  EXPECT_TRUE(detectRaces(M).empty());
}

TEST(RaceDetector, CalleeInheritsLockedContext) {
  // The helper touches the field but is only ever invoked from inside a
  // synchronized region: its accesses run locked, no warning.
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Helper("readField", 1, 1);
    Helper.load(0).getField(1).ret();
    M.addMethod(Helper.take());
  }
  {
    MethodBuilder B("lockedCaller", 1, 1);
    B.load(0).syncEnter();
    B.load(0).invoke(0).pop();
    B.syncExit();
    B.load(0).syncEnter();
    B.load(0).constant(1).putField(1);
    B.syncExit().constant(0).ret();
    M.addMethod(B.take());
  }
  EXPECT_TRUE(detectRaces(M).empty());
}

TEST(RaceDetector, CalleeCalledFromBothContextsWarns) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Helper("readField", 1, 1);
    Helper.load(0).getField(1).ret(); // pc 0, 1
    M.addMethod(Helper.take());
  }
  {
    MethodBuilder B("mixedCaller", 1, 1);
    B.load(0).syncEnter();
    B.load(0).invoke(0).pop();
    B.load(0).constant(1).putField(1); // locked write: makes F1 hot
    B.syncExit();
    B.load(0).invoke(0).pop(); // unlocked path into the helper
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  std::vector<RaceWarning> W = detectRaces(M);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0].MethodId, 0u); // the helper's read
  EXPECT_EQ(W[0].Pc, 1u);
  EXPECT_EQ(W[0].Kind, AccessKind::Read);
  EXPECT_EQ(W[0].Space, FieldSpace::IntField);
  EXPECT_EQ(W[0].Index, 1);
}

TEST(RaceDetector, StaticCellsAreTracked) {
  Module M;
  M.NumStatics = 2;
  {
    MethodBuilder B("lockedBump", 1, 1);
    B.load(0).syncEnter();
    B.getStatic(1).constant(1).add().putStatic(1);
    B.syncExit().constant(0).ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("plainPeek", 1, 1);
    B.getStatic(1).ret(); // pc 0 — unlocked read of a written static
    M.addMethod(B.take());
  }
  std::vector<RaceWarning> W = detectRaces(M);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0].MethodId, 1u);
  EXPECT_EQ(W[0].Pc, 0u);
  EXPECT_EQ(W[0].Space, FieldSpace::Static);
  EXPECT_EQ(W[0].Index, 1);
}

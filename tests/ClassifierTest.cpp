//===- tests/ClassifierTest.cpp - Section 3.2 analysis tests --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/ReadOnlyClassifier.h"

#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

Module moduleOf(Method M, uint32_t NumStatics = 4) {
  Module Mod;
  Mod.NumStatics = NumStatics;
  Mod.addMethod(std::move(M));
  return Mod;
}

RegionKind soleKind(const Module &M) {
  ClassifiedModule C = classifyModule(M);
  const auto &Regions = C.regions(0);
  EXPECT_EQ(Regions.size(), 1u);
  return Regions[0].Kind;
}

} // namespace

TEST(Classifier, EmptyBlockIsReadOnly) {
  MethodBuilder B("empty", 1, 1);
  B.load(0).syncEnter().syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, FieldReadIsReadOnly) {
  MethodBuilder B("get", 1, 1);
  B.load(0).syncEnter();
  B.load(0).getField(0).pop();
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, FieldWriteIsWriting) {
  MethodBuilder B("set", 1, 1);
  B.load(0).syncEnter();
  B.load(0).constant(9).putField(0);
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::Writing);
}

TEST(Classifier, StaticWriteIsWriting) {
  MethodBuilder B("setS", 1, 1);
  B.load(0).syncEnter();
  B.constant(9).putStatic(0);
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::Writing);
}

TEST(Classifier, SideEffectsAreWriting) {
  MethodBuilder B("nat", 1, 1);
  B.load(0).syncEnter();
  B.constant(1).nativeCall().pop();
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::Writing);
}

TEST(Classifier, StoreToDeadLocalIsAllowed) {
  // The scratch local is written before being read inside the region and
  // never read after it: dead at region entry, so elidable (Section 3.2).
  MethodBuilder B("scratch", 1, 2);
  B.load(0).syncEnter();
  B.constant(5).store(1);
  B.load(1).pop();
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, StoreToLiveLocalIsWriting) {
  // Local 1 is read inside the region before being overwritten: it is live
  // at region entry, and re-execution would observe the clobbered value.
  MethodBuilder B("live", 1, 2);
  B.constant(1).store(1);
  B.load(0).syncEnter();
  B.load(1).constant(5).add().store(1);
  B.syncExit();
  B.load(1).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::Writing);
}

TEST(Classifier, RegionRedefiningLocalBeforeUseIsReadOnly) {
  // The region stores local 1 but kills it before any use: dead at entry,
  // so re-execution simply recomputes it — elidable. (This is how results
  // flow out of read-only synchronized blocks.)
  MethodBuilder B("redef", 1, 2);
  B.constant(1).store(1);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, StoreToLocalDeadAfterRegionIsAllowed) {
  // Local 1 is initialized before the region but never read again after
  // the store: not live at entry (the in-region store kills it before any
  // use). Liveness, not mere mention, decides.
  MethodBuilder B("deadAfter", 1, 2);
  B.constant(1).store(1);
  B.load(0).syncEnter();
  B.constant(5).store(1);
  B.load(1).pop();
  B.syncExit();
  B.constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, ThrowIsAllowedInReadOnly) {
  // "Throwing runtime exceptions ... is allowed in read-only synchronized
  // blocks" (Section 3.2).
  MethodBuilder B("thrower", 1, 1);
  auto NoThrow = B.newLabel();
  B.load(0).syncEnter();
  B.load(0).getField(0).jumpIfZero(NoThrow);
  B.constant(100).throwError();
  B.bind(NoThrow);
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, AllocationIsAllowedInReadOnly) {
  // "we do not explicitly forbid read-only synchronized blocks from
  // creating new objects" (Section 3.2).
  MethodBuilder B("alloc", 1, 1);
  B.load(0).syncEnter();
  B.newObject().pop();
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, PureInvokeIsAllowed) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Callee("pureHelper", 1, 1);
    Callee.load(0).constant(2).mul().ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("caller", 1, 1);
    Caller.load(0).syncEnter();
    Caller.constant(21).invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_TRUE(C.methodIsPure(0));
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::ReadOnly);
}

TEST(Classifier, ImpureInvokeBlocksElision) {
  Module M;
  M.NumStatics = 1;
  {
    MethodBuilder Callee("impureHelper", 0, 0);
    Callee.constant(1).putStatic(0).constant(0).ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("caller", 1, 1);
    Caller.load(0).syncEnter();
    Caller.invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_FALSE(C.methodIsPure(0));
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(1)[0].primary().Code, DiagCode::ImpureInvoke);
  EXPECT_EQ(C.regions(1)[0].primary().Operand, 0); // callee method id
  EXPECT_NE(regionReason(M, C.regions(1)[0]).find("impureHelper"),
            std::string::npos);
}

TEST(Classifier, TransitivePurityThroughCallChain) {
  Module M;
  M.NumStatics = 1;
  {
    MethodBuilder Leaf("leafWrites", 0, 0);
    Leaf.constant(1).putStatic(0).constant(0).ret();
    M.addMethod(Leaf.take());
  }
  {
    MethodBuilder Mid("midCallsLeaf", 0, 0);
    Mid.invoke(0).ret();
    M.addMethod(Mid.take());
  }
  {
    MethodBuilder Top("top", 1, 1);
    Top.load(0).syncEnter();
    Top.invoke(1).pop();
    Top.syncExit().constant(0).ret();
    M.addMethod(Top.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_FALSE(C.methodIsPure(1)); // impurity propagates up
  EXPECT_EQ(C.regions(2)[0].Kind, RegionKind::Writing);
}

TEST(Classifier, RecursiveInvokeIsConservative) {
  Module M;
  M.NumStatics = 0;
  MethodBuilder Rec("recurse", 1, 1);
  Rec.load(0).invoke(0).ret();
  M.addMethod(Rec.take());
  ClassifiedModule C = classifyModule(M);
  EXPECT_FALSE(C.methodIsPure(0));
}

TEST(Classifier, AnnotationOverridesVirtualDispatchUncertainty) {
  // The paper's @SoleroReadOnly use case: the block invokes something the
  // analysis cannot prove pure, but the developer asserts read-onlyness.
  Module M;
  M.NumStatics = 1;
  {
    MethodBuilder Callee("possiblyImpure", 0, 0);
    Callee.constant(1).putStatic(0).constant(0).ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("annotated", 1, 1);
    Caller.annotateReadOnly();
    Caller.load(0).syncEnter();
    Caller.invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::ReadOnly);
  EXPECT_EQ(C.regions(1)[0].primary().Code, DiagCode::AnnotatedReadOnly);
  EXPECT_NE(regionReason(M, C.regions(1)[0]).find("@SoleroReadOnly"),
            std::string::npos);
}

TEST(Classifier, NestedSynchronizedBlocksOuterElision) {
  Module M;
  M.NumStatics = 0;
  MethodBuilder B("nested", 2, 2);
  B.load(0).syncEnter();
  B.load(1).syncEnter();
  B.load(1).getField(0).pop();
  B.syncExit();
  B.syncExit().constant(0).ret();
  M.addMethod(B.take());
  ClassifiedModule C = classifyModule(M);
  ASSERT_EQ(C.regions(0).size(), 2u);
  // Outer (EnterPc smaller) is blocked by the nested monitor operation;
  // the inner region itself is read-only.
  EXPECT_EQ(C.regions(0)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(0)[1].Kind, RegionKind::ReadOnly);
}

TEST(Classifier, ProfileGuidedReadMostly) {
  // A region with a rarely-executed write becomes read-mostly under a
  // profile (Section 5).
  MethodBuilder B("mostly", 2, 2);
  auto Skip = B.newLabel();
  B.load(0).syncEnter();          // pc 0, 1
  B.load(1).jumpIfZero(Skip);     // pc 2, 3
  B.load(0).constant(1).putField(0); // pc 4, 5, 6 — the rare write
  B.bind(Skip);
  B.load(0).getField(0).pop();    // pc 7, 8, 9
  B.syncExit();                   // pc 10
  B.constant(0).ret();
  Module M = moduleOf(B.take());

  // Without a profile: Writing.
  EXPECT_EQ(classifyModule(M).regions(0)[0].Kind, RegionKind::Writing);

  // Synthetic profile: 1000 entries, 5 writes.
  Profile P;
  P.Counts.resize(1);
  P.Counts[0].assign(M.method(0).Code.size(), 0);
  P.Counts[0][1] = 1000; // SyncEnter
  P.Counts[0][6] = 5;    // PutField
  EXPECT_EQ(classifyModule(M, &P).regions(0)[0].Kind,
            RegionKind::ReadMostly);

  // Hot writes: stays Writing.
  P.Counts[0][6] = 500;
  EXPECT_EQ(classifyModule(M, &P).regions(0)[0].Kind, RegionKind::Writing);
}

TEST(Classifier, ProfileDoesNotOverrideLiveLocalStore) {
  // Local 1 is read inside the region BEFORE being overwritten, so it is
  // live at region entry; re-execution would observe the clobbered value.
  // No profile may soften this into read-mostly.
  MethodBuilder B("liveStore", 1, 2);
  B.constant(1).store(1);
  B.load(0).syncEnter();           // pc 2, 3
  B.load(1).constant(5).add().store(1); // pc 4..7 — reads then clobbers
  B.syncExit();
  B.load(1).ret();
  Module M = moduleOf(B.take());
  EXPECT_EQ(classifyModule(M).regions(0)[0].Kind, RegionKind::Writing);
  Profile P;
  P.Counts.resize(1);
  P.Counts[0].assign(M.method(0).Code.size(), 0);
  P.Counts[0][3] = 1000;
  EXPECT_EQ(classifyModule(M, &P).regions(0)[0].Kind, RegionKind::Writing);
}

TEST(Liveness, ComputesLiveInSets) {
  // local0 = param (live through); local1 = defined at pc2.
  MethodBuilder B("f", 1, 2);
  B.constant(5).store(1); // pc 0,1
  B.load(0).load(1).add().ret(); // pc 2..5
  Module M = moduleOf(B.take());
  std::vector<BitVec> Live = computeLiveIn(M, 0);
  EXPECT_TRUE(Live[0].test(0)); // only local0 live at entry
  EXPECT_FALSE(Live[0].test(1));
  EXPECT_TRUE(Live[2].test(0)); // both live before the loads
  EXPECT_TRUE(Live[2].test(1));
}

TEST(Liveness, SupportsMoreThan64Locals) {
  // The former bitmask implementation hard-failed above 64 locals; the
  // dynamic bitset must analyze slot 69 like any other.
  MethodBuilder B("wide", 1, 70);
  B.constant(5).store(69);       // pc 0,1
  B.load(0).load(69).add().ret(); // pc 2..5
  Module M = moduleOf(B.take());
  std::vector<BitVec> Live = computeLiveIn(M, 0);
  ASSERT_EQ(Live[0].size(), 70u);
  EXPECT_FALSE(Live[0].test(69)); // defined before use
  EXPECT_TRUE(Live[2].test(69));  // live between def and use
}

TEST(Classifier, LiveLocalStoreDetectedPast64Locals) {
  // Regression for the 64-local ceiling: local 69 is live at region entry
  // and clobbered inside — that must still block elision.
  MethodBuilder B("wideLive", 1, 70);
  B.constant(1).store(69);
  B.load(0).syncEnter();
  B.load(69).constant(5).add().store(69);
  B.syncExit();
  B.load(69).ret();
  Module M = moduleOf(B.take());
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(0)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(0)[0].primary().Code, DiagCode::LiveLocalStore);
  EXPECT_EQ(C.regions(0)[0].primary().Operand, 69);
}

TEST(Classifier, DeadLocalStorePast64LocalsIsReadOnly) {
  MethodBuilder B("wideDead", 1, 70);
  B.load(0).syncEnter();
  B.constant(5).store(69); // dead at entry: defined before any use
  B.load(69).pop();
  B.syncExit().constant(0).ret();
  EXPECT_EQ(soleKind(moduleOf(B.take())), RegionKind::ReadOnly);
}

TEST(Classifier, MutuallyRecursiveCalleesAreConservative) {
  // a -> b -> a: the InProgress marker bottoms the cycle out as impure on
  // both sides, so regions invoking either stay conventional.
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder A("mutA", 1, 1);
    A.load(0).invoke(1).ret();
    M.addMethod(A.take());
  }
  {
    MethodBuilder Bm("mutB", 1, 1);
    Bm.load(0).invoke(0).ret();
    M.addMethod(Bm.take());
  }
  {
    MethodBuilder Caller("caller", 1, 1);
    Caller.load(0).syncEnter();
    Caller.constant(7).invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_FALSE(C.methodIsPure(0));
  EXPECT_FALSE(C.methodIsPure(1));
  EXPECT_EQ(C.regions(2)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(2)[0].primary().Code, DiagCode::ImpureInvoke);
}

TEST(Classifier, SelfRecursiveCalleeInsideRegionIsConservative) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Rec("recurse", 1, 1);
    Rec.load(0).invoke(0).ret();
    M.addMethod(Rec.take());
  }
  {
    MethodBuilder Caller("caller", 1, 1);
    Caller.load(0).syncEnter();
    Caller.constant(3).invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_FALSE(C.methodIsPure(0));
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(1)[0].primary().Code, DiagCode::ImpureInvoke);
}

TEST(Classifier, PureInvokeAfterConditionalThrowStaysReadOnly) {
  // The invoke is only reachable when the guard does not throw; throwing
  // is permitted in read-only blocks, and the classification is lexical,
  // so the region stays read-only.
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Callee("pureHelper", 1, 1);
    Callee.load(0).constant(2).mul().ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("guarded", 1, 1);
    auto NoThrow = Caller.newLabel();
    Caller.load(0).syncEnter();
    Caller.load(0).getField(0).jumpIfZero(NoThrow);
    Caller.constant(100).throwError();
    Caller.bind(NoThrow);
    Caller.constant(21).invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::ReadOnly);
  EXPECT_EQ(C.regions(1)[0].primary().Code,
            DiagCode::NoWritesOrSideEffects);
}

TEST(Classifier, ImpureInvokeAfterConditionalThrowStillBlocks) {
  // Even though the impure invoke executes only on the no-throw path, the
  // lexical scan must find it — reachability does not soften blockers.
  Module M;
  M.NumStatics = 1;
  {
    MethodBuilder Callee("impureHelper", 0, 0);
    Callee.constant(1).putStatic(0).constant(0).ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("guarded", 1, 1);
    auto NoThrow = Caller.newLabel();
    Caller.load(0).syncEnter();
    Caller.load(0).getField(0).jumpIfZero(NoThrow);
    Caller.constant(100).throwError();
    Caller.bind(NoThrow);
    Caller.invoke(0).pop();
    Caller.syncExit().constant(0).ret();
    M.addMethod(Caller.take());
  }
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(1)[0].primary().Code, DiagCode::ImpureInvoke);
}

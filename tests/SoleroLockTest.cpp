//===- tests/SoleroLockTest.cpp - SOLERO protocol tests -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"

#include "runtime/AsyncEventBus.h"
#include "runtime/SharedField.h"

#include <functional>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::lockword;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

class SoleroLockTest : public ::testing::Test {
protected:
  SoleroLockTest() : Ctx(quietConfig()), L(Ctx) {}

  ProtocolCounters delta() {
    ProtocolCounters Now = ThreadRegistry::instance().totalCounters();
    ProtocolCounters D = Now;
    D.ElisionAttempts -= Base.ElisionAttempts;
    D.ElisionSuccesses -= Base.ElisionSuccesses;
    D.ElisionFailures -= Base.ElisionFailures;
    D.Fallbacks -= Base.Fallbacks;
    D.FaultRetries -= Base.FaultRetries;
    D.AsyncAborts -= Base.AsyncAborts;
    D.Inflations -= Base.Inflations;
    return D;
  }
  void snap() { Base = ThreadRegistry::instance().totalCounters(); }

  RuntimeContext Ctx;
  SoleroLock L;
  ObjectHeader H;
  ProtocolCounters Base;
};

} // namespace

TEST_F(SoleroLockTest, WritingSectionAdvancesCounter) {
  EXPECT_EQ(H.word().load(), 0u);
  L.synchronizedWrite(H, [] {});
  EXPECT_EQ(H.word().load(), CounterUnit);
  L.synchronizedWrite(H, [] {});
  EXPECT_EQ(H.word().load(), 2 * CounterUnit);
}

TEST_F(SoleroLockTest, HeldWordIsThreadIdPlusLockBit) {
  ThreadState &TS = ThreadRegistry::current();
  L.synchronizedWrite(H, [&] {
    EXPECT_EQ(H.word().load(), soleroHeldWord(TS.tidBits()));
    EXPECT_TRUE(L.heldByCurrentThread(H));
  });
  EXPECT_FALSE(L.heldByCurrentThread(H));
}

TEST_F(SoleroLockTest, WriteRecursionNestsAndUnwinds) {
  L.synchronizedWrite(H, [&] {
    L.synchronizedWrite(H, [&] {
      L.synchronizedWrite(H, [&] {
        EXPECT_EQ(soleroRecursion(H.word().load()), 2u);
      });
    });
    EXPECT_EQ(soleroRecursion(H.word().load()), 0u);
  });
  // One counter increment for the whole outermost section.
  EXPECT_EQ(H.word().load(), CounterUnit);
}

TEST_F(SoleroLockTest, DeepRecursionBeyondFiveBits) {
  // 5 recursion bits hold 31 nested levels; go well past that to exercise
  // the overflow side table.
  const int Depth = static_cast<int>(SoleroRecMax) + 20;
  std::function<void(int)> Nest = [&](int N) {
    if (N == 0) {
      EXPECT_TRUE(L.heldByCurrentThread(H));
      return;
    }
    L.synchronizedWrite(H, [&] { Nest(N - 1); });
  };
  Nest(Depth);
  EXPECT_EQ(H.word().load(), CounterUnit);
  EXPECT_FALSE(L.heldByCurrentThread(H));
}

TEST_F(SoleroLockTest, QuiescentReadOnlyElides) {
  snap();
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
    EXPECT_TRUE(G.speculative());
    // Elided: the lock word was never written.
    EXPECT_TRUE(soleroIsFree(H.word().load()));
    return 5;
  });
  EXPECT_EQ(V, 5);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionAttempts, 1u);
  EXPECT_EQ(D.ElisionSuccesses, 1u);
  EXPECT_EQ(D.ElisionFailures, 0u);
  EXPECT_EQ(D.Fallbacks, 0u);
}

TEST_F(SoleroLockTest, ElisionWorksOnFreshLockWithCounterZero) {
  // Regression guard: counter value 0 is a legitimate free word, not a
  // "holding" sentinel.
  ASSERT_EQ(H.word().load(), 0u);
  snap();
  EXPECT_EQ(L.synchronizedReadOnly(H, [](ReadGuard &) { return 1; }), 1);
  EXPECT_EQ(delta().ElisionSuccesses, 1u);
}

TEST_F(SoleroLockTest, InterferenceCausesFallbackAfterOneFailure) {
  snap();
  int Executions = 0;
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
    if (Executions++ == 0) {
      // Simulate a concurrent writer completing a section.
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
      EXPECT_TRUE(G.speculative());
    } else {
      // Paper behaviour: fallback after one failure acquires the lock.
      EXPECT_FALSE(G.speculative());
      EXPECT_TRUE(L.heldByCurrentThread(H));
    }
    return 9;
  });
  EXPECT_EQ(V, 9);
  EXPECT_EQ(Executions, 2);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionFailures, 1u);
  EXPECT_EQ(D.Fallbacks, 1u);
  // The fallback's own release advanced the counter once more.
  EXPECT_EQ(H.word().load(), 2 * CounterUnit);
}

TEST_F(SoleroLockTest, ConfigurableRetryBudgetReSpeculates) {
  SoleroConfig Cfg;
  Cfg.MaxSpecAttempts = 3;
  SoleroLock L3(Ctx, Cfg);
  snap();
  int Executions = 0;
  int V = L3.synchronizedReadOnly(H, [&](ReadGuard &G) {
    EXPECT_TRUE(G.speculative()); // never falls back in this test
    if (Executions++ == 0)
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
    return 11;
  });
  EXPECT_EQ(V, 11);
  EXPECT_EQ(Executions, 2);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionFailures, 1u);
  EXPECT_EQ(D.ElisionSuccesses, 1u);
  EXPECT_EQ(D.Fallbacks, 0u);
}

TEST_F(SoleroLockTest, UnelidedModeTakesTheLock) {
  SoleroConfig Cfg;
  Cfg.ElideReadOnly = false;
  SoleroLock LU(Ctx, Cfg);
  snap();
  LU.synchronizedReadOnly(H, [&](ReadGuard &G) {
    EXPECT_FALSE(G.speculative());
    EXPECT_TRUE(LU.heldByCurrentThread(H));
  });
  EXPECT_EQ(delta().ElisionAttempts, 0u);
  EXPECT_EQ(H.word().load(), CounterUnit);
}

TEST_F(SoleroLockTest, GenuineGuestExceptionPropagates) {
  snap();
  EXPECT_THROW(L.synchronizedReadOnly(H,
                                      [&](ReadGuard &) -> int {
                                        throw std::out_of_range("genuine");
                                      }),
               std::out_of_range);
  // Consistent reads: the exception is genuine, no retry.
  ProtocolCounters D = delta();
  EXPECT_EQ(D.FaultRetries, 0u);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST_F(SoleroLockTest, InconsistentExceptionIsAbsorbedAndRetried) {
  snap();
  int Executions = 0;
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &) -> int {
    if (Executions++ == 0) {
      // The "fault" coincides with a writer having changed the word:
      // Section 3.3 says the exception must be swallowed and retried.
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
      throw std::runtime_error("spurious null deref");
    }
    return 13;
  });
  EXPECT_EQ(V, 13);
  EXPECT_EQ(Executions, 2);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.FaultRetries, 1u);
  EXPECT_EQ(D.Fallbacks, 1u);
}

TEST_F(SoleroLockTest, ExceptionWhileHoldingReleasesAndPropagates) {
  int Executions = 0;
  EXPECT_THROW(L.synchronizedReadOnly(H,
                                      [&](ReadGuard &) -> int {
                                        if (Executions++ == 0)
                                          H.word().fetch_add(
                                              CounterUnit,
                                              std::memory_order_relaxed);
                                        throw std::runtime_error("always");
                                      }),
               std::runtime_error);
  EXPECT_EQ(Executions, 2);
  // The fallback held the lock when the exception escaped; it must have
  // been released on the way out.
  EXPECT_TRUE(soleroIsFree(H.word().load()));
  EXPECT_FALSE(L.heldByCurrentThread(H));
}

TEST_F(SoleroLockTest, AsyncCheckpointAbortsInvalidSpeculation) {
  snap();
  int Executions = 0;
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
    if (Executions++ == 0) {
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
      AsyncEventBus::postToAllThreads();
      G.checkpoint(); // must throw SpeculationFault: word changed
      ADD_FAILURE() << "checkpoint did not abort";
    }
    return 17;
  });
  EXPECT_EQ(V, 17);
  EXPECT_EQ(Executions, 2);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.AsyncAborts, 1u);
  EXPECT_EQ(D.ElisionFailures, 1u);
}

TEST_F(SoleroLockTest, CheckpointIsNoOpWhenConsistent) {
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
    AsyncEventBus::postToAllThreads();
    G.checkpoint(); // consistent: must not throw
    return 19;
  });
  EXPECT_EQ(V, 19);
}

TEST_F(SoleroLockTest, ReadInsideWriteTakesRecursionPath) {
  snap();
  L.synchronizedWrite(H, [&] {
    int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
      EXPECT_FALSE(G.speculative()); // we hold the lock: no speculation
      EXPECT_EQ(soleroRecursion(H.word().load()), 1u);
      return 23;
    });
    EXPECT_EQ(V, 23);
    EXPECT_EQ(soleroRecursion(H.word().load()), 0u);
  });
  EXPECT_EQ(delta().ElisionAttempts, 0u);
  EXPECT_EQ(H.word().load(), CounterUnit);
}

TEST_F(SoleroLockTest, WriteInsideReadInvalidatesAndRetries) {
  // A writing section on the same lock inside a speculative read-only
  // section: the write succeeds (the word is free), which invalidates the
  // enclosing speculation; the retry holds the lock and nests recursively.
  int Executions = 0;
  int64_t Data = 0;
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &) {
    ++Executions;
    L.synchronizedWrite(H, [&] { ++Data; });
    return 29;
  });
  EXPECT_EQ(V, 29);
  EXPECT_EQ(Executions, 2);
  EXPECT_EQ(Data, 2); // the write body also re-executed
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST_F(SoleroLockTest, NestedElisionOnTwoLocks) {
  ObjectHeader H2;
  snap();
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &) {
    return L.synchronizedReadOnly(H2, [&](ReadGuard &G2) {
      EXPECT_TRUE(G2.speculative());
      return 31;
    });
  });
  EXPECT_EQ(V, 31);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionAttempts, 2u);
  EXPECT_EQ(D.ElisionSuccesses, 2u);
}

TEST_F(SoleroLockTest, OuterInvalidationUnwindsNestedSpeculation) {
  ObjectHeader H2;
  snap();
  int OuterRuns = 0, InnerRuns = 0;
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &) {
    ++OuterRuns;
    return L.synchronizedReadOnly(H2, [&](ReadGuard &G2) {
      if (InnerRuns++ == 0) {
        // Invalidate the OUTER lock, then hit a check point: the fault must
        // unwind past the inner frame to the outer one.
        H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
        AsyncEventBus::postToAllThreads();
        G2.checkpoint();
        ADD_FAILURE() << "checkpoint did not abort";
      }
      return 37;
    });
  });
  EXPECT_EQ(V, 37);
  EXPECT_EQ(OuterRuns, 2);
  EXPECT_EQ(InnerRuns, 2);
  EXPECT_GE(delta().AsyncAborts, 1u);
}

TEST_F(SoleroLockTest, MutualExclusionOfWritersUnderContention) {
  constexpr int Threads = 4, Iters = 4000;
  int64_t Plain = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I)
        L.synchronizedWrite(H, [&] { ++Plain; });
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Plain, static_cast<int64_t>(Threads) * Iters);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST_F(SoleroLockTest, ReadersObserveConsistentPairsUnderWriters) {
  // The seqlock-style consistency property, through the full SOLERO stack:
  // a writer keeps two fields equal; elided readers must never observe a
  // mixed pair.
  SharedField<int64_t> A, B;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Mismatch{false};
  std::thread Writer([&] {
    for (int I = 1; I <= 30000; ++I)
      L.synchronizedWrite(H, [&] {
        A.write(I);
        B.write(I);
      });
    Stop.store(true);
  });
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Stop.load()) {
        auto Pair =
            L.synchronizedReadOnly(H, [&](ReadGuard &) {
              return std::pair<int64_t, int64_t>(A.read(), B.read());
            });
        if (Pair.first != Pair.second)
          Mismatch.store(true);
      }
    });
  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_FALSE(Mismatch.load());
  EXPECT_EQ(A.read(), 30000);
}

TEST_F(SoleroLockTest, InflatedEpisodeIsVisibleToSpanningReaders) {
  // A reader that spans an inflate/deflate episode must observe a changed
  // counter (the monitor stores the incremented counter, Section 3.2).
  ThreadState &TS = ThreadRegistry::current();
  SoleroLock::ReadEntry E = L.readEnter(H, TS);
  ASSERT_FALSE(E.Holding);
  uint64_t Before = E.V;

  std::thread Other([&] {
    ObjectHeader *HP = &H;
    // Acquire and force inflation while held, then release (deflates).
    ThreadState &OTS = ThreadRegistry::current();
    uint64_t V1 = L.enterWrite(*HP, OTS);
    Ctx.monitors().monitorFor(*HP).inflateHeldByOwner(*HP, OTS, 0,
                                                      V1 + CounterUnit);
    L.exitWrite(*HP, OTS, V1);
  });
  Other.join();

  EXPECT_TRUE(soleroIsFree(H.word().load())); // deflated
  EXPECT_FALSE(L.validate(H, Before));        // but the counter moved
}

TEST_F(SoleroLockTest, ReadMostlyPureReadElides) {
  snap();
  int V = L.synchronizedReadMostly(H, [&](WriteIntent &W) {
    EXPECT_FALSE(W.holding());
    return 41;
  });
  EXPECT_EQ(V, 41);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionSuccesses, 1u);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST_F(SoleroLockTest, ReadMostlyUpgradeAcquiresAndValidates) {
  SharedField<int64_t> Data{0};
  snap();
  int V = L.synchronizedReadMostly(H, [&](WriteIntent &W) {
    int64_t Seen = Data.read();
    W.acquireForWrite(); // Figure 17: CAS(v -> tid|LOCK)
    EXPECT_TRUE(W.holding());
    EXPECT_TRUE(L.heldByCurrentThread(H));
    Data.write(Seen + 1);
    return 43;
  });
  EXPECT_EQ(V, 43);
  EXPECT_EQ(Data.read(), 1);
  // Released with a counter increment.
  EXPECT_EQ(H.word().load(), CounterUnit);
  EXPECT_EQ(delta().ElisionSuccesses, 1u);
}

TEST_F(SoleroLockTest, ReadMostlyFailedUpgradeReExecutesHoldingLock) {
  snap();
  int Executions = 0;
  int V = L.synchronizedReadMostly(H, [&](WriteIntent &W) {
    if (Executions++ == 0) {
      // Invalidate before the upgrade: the CAS must fail and the engine
      // must re-execute while holding the lock (Figure 17 lines 12-14).
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
      W.acquireForWrite();
      ADD_FAILURE() << "upgrade unexpectedly succeeded";
    } else {
      EXPECT_TRUE(W.holding());
      W.acquireForWrite(); // no-op now
    }
    return 47;
  });
  EXPECT_EQ(V, 47);
  EXPECT_EQ(Executions, 2);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.Fallbacks, 1u);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST_F(SoleroLockTest, ReadMostlyInsideWriteHoldsImmediately) {
  L.synchronizedWrite(H, [&] {
    int V = L.synchronizedReadMostly(H, [&](WriteIntent &W) {
      EXPECT_TRUE(W.holding());
      W.acquireForWrite(); // no-op
      return 53;
    });
    EXPECT_EQ(V, 53);
  });
  EXPECT_EQ(H.word().load(), CounterUnit);
}

TEST_F(SoleroLockTest, VoidReturningSectionsWork) {
  int Side = 0;
  L.synchronizedReadOnly(H, [&](ReadGuard &) { Side = 1; });
  EXPECT_EQ(Side, 1);
  L.synchronizedReadMostly(H, [&](WriteIntent &) { Side = 2; });
  EXPECT_EQ(Side, 2);
  L.synchronizedWrite(H, [&] { Side = 3; });
  EXPECT_EQ(Side, 3);
}

TEST_F(SoleroLockTest, ConcurrentReadersScaleWithoutLockWordWrites) {
  // While only readers run, the lock word must never change.
  constexpr int Threads = 4, Iters = 3000;
  SharedField<int64_t> Value{77};
  uint64_t WordBefore = H.word().load();
  std::atomic<int64_t> Sum{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      int64_t Local = 0;
      for (int I = 0; I < Iters; ++I)
        Local += L.synchronizedReadOnly(
            H, [&](ReadGuard &) { return Value.read(); });
      Sum.fetch_add(Local);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Sum.load(), static_cast<int64_t>(Threads) * Iters * 77);
  EXPECT_EQ(H.word().load(), WordBefore);
}

TEST_F(SoleroLockTest, WeakBarrierModeStillValidates) {
  SoleroConfig Cfg;
  Cfg.Barriers = BarrierMode::Weak;
  SoleroLock LW(Ctx, Cfg);
  int Executions = 0;
  int V = LW.synchronizedReadOnly(H, [&](ReadGuard &) {
    if (Executions++ == 0)
      H.word().fetch_add(CounterUnit, std::memory_order_relaxed);
    return 59;
  });
  EXPECT_EQ(V, 59);
  EXPECT_EQ(Executions, 2);
}

//===- tests/InterpreterTest.cpp - CSIR execution tests -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"

#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::jit;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

ProtocolCounters totals() { return ThreadRegistry::instance().totalCounters(); }

} // namespace

TEST(Interpreter, ArithmeticAndControlFlow) {
  // Iterative factorial.
  MethodBuilder B("fact", 1, 2);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.constant(1).store(1);
  B.bind(Loop);
  B.load(0).jumpIfZero(Done);
  B.load(1).load(0).mul().store(1);
  B.load(0).constant(1).sub().store(0);
  B.jump(Loop);
  B.bind(Done);
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  EXPECT_EQ(I.invoke("fact", {Value::ofInt(10)}).asInt(), 3628800);
}

TEST(Interpreter, InvokeAndRecursion) {
  Module M;
  {
    MethodBuilder Fib("fib", 1, 1);
    auto BaseL = Fib.newLabel();
    Fib.load(0).constant(2).cmpLt().jumpIfNonZero(BaseL);
    Fib.load(0).constant(1).sub().invoke(0);
    Fib.load(0).constant(2).sub().invoke(0);
    Fib.add().ret();
    Fib.bind(BaseL);
    Fib.load(0).ret();
    M.addMethod(Fib.take());
  }
  Interpreter I(ctx(), std::move(M));
  EXPECT_EQ(I.invoke("fib", {Value::ofInt(15)}).asInt(), 610);
}

TEST(Interpreter, GuestErrorsPropagate) {
  MethodBuilder B("div", 2, 2);
  B.load(0).load(1).div().ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  EXPECT_EQ(I.invoke("div", {Value::ofInt(10), Value::ofInt(2)}).asInt(), 5);
  try {
    I.invoke("div", {Value::ofInt(1), Value::ofInt(0)});
    FAIL() << "expected GuestError";
  } catch (GuestError &E) {
    EXPECT_EQ(E.Code, static_cast<int32_t>(GuestErrorKind::Arithmetic));
  }
}

TEST(Interpreter, NullDereferenceThrows) {
  MethodBuilder B("deref", 0, 0);
  B.pushNull().getField(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  try {
    I.invoke("deref", {});
    FAIL() << "expected GuestError";
  } catch (GuestError &E) {
    EXPECT_EQ(E.Code, static_cast<int32_t>(GuestErrorKind::NullPointer));
  }
}

TEST(Interpreter, FieldsAndStatics) {
  MethodBuilder B("swapIntoStatic", 1, 1);
  B.load(0).getField(2).putStatic(1);
  B.load(0).constant(77).putField(3);
  B.getStatic(1).ret();
  Module M;
  M.NumStatics = 2;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *Obj = I.allocateObject();
  Obj->F[2].write(123);
  EXPECT_EQ(I.invoke("swapIntoStatic", {Value::ofRef(Obj)}).asInt(), 123);
  EXPECT_EQ(Obj->F[3].read(), 77);
  EXPECT_EQ(I.staticCell(1), 123);
}

TEST(Interpreter, ReadOnlyRegionElides) {
  // synchronized (obj) { return obj.F0; }
  MethodBuilder B("get", 1, 2);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadOnly);

  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(55);
  ProtocolCounters Before = totals();
  EXPECT_EQ(I.invoke("get", {Value::ofRef(Obj)}).asInt(), 55);
  ProtocolCounters After = totals();
  EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 1u);
  // The lock word was never touched.
  EXPECT_EQ(Obj->Hdr.word().load(), 0u);
}

TEST(Interpreter, WritingRegionLocks) {
  // synchronized (obj) { obj.F0 = obj.F0 + 1; }
  MethodBuilder B("inc", 1, 1);
  B.load(0).syncEnter();
  B.load(0).load(0).getField(0).constant(1).add().putField(0);
  B.syncExit();
  B.load(0).getField(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::Writing);

  GuestObject *Obj = I.allocateObject();
  EXPECT_EQ(I.invoke("inc", {Value::ofRef(Obj)}).asInt(), 1);
  EXPECT_EQ(I.invoke("inc", {Value::ofRef(Obj)}).asInt(), 2);
  // Two writing sections advanced the SOLERO counter twice.
  EXPECT_EQ(Obj->Hdr.word().load(), 2 * lockword::CounterUnit);
}

TEST(Interpreter, ReturnInsideRegionReleasesLock) {
  MethodBuilder B("early", 1, 1);
  B.load(0).syncEnter();
  B.load(0).getField(0).ret(); // return from inside the region
  B.syncExit();
  B.constant(-1).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(7);
  EXPECT_EQ(I.invoke("early", {Value::ofRef(Obj)}).asInt(), 7);
  EXPECT_TRUE(lockword::soleroIsFree(Obj->Hdr.word().load()));
}

TEST(Interpreter, GuestThrowInsideElidedRegionIsGenuine) {
  MethodBuilder B("thrower", 1, 1);
  auto NoThrow = B.newLabel();
  B.load(0).syncEnter();
  B.load(0).getField(0).jumpIfZero(NoThrow);
  B.constant(200).throwError();
  B.bind(NoThrow);
  B.syncExit();
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadOnly);
  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(1);
  try {
    I.invoke("thrower", {Value::ofRef(Obj)});
    FAIL() << "expected GuestError";
  } catch (GuestError &E) {
    EXPECT_EQ(E.Code, 200);
  }
  EXPECT_TRUE(lockword::soleroIsFree(Obj->Hdr.word().load()));
}

TEST(Interpreter, ConventionalModeLocksReadOnlyRegions) {
  MethodBuilder B("get", 1, 2);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter::Options Opts;
  Opts.UseConventionalLocks = true;
  Interpreter I(ctx(), std::move(M), Opts);
  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(9);
  ProtocolCounters Before = totals();
  EXPECT_EQ(I.invoke("get", {Value::ofRef(Obj)}).asInt(), 9);
  ProtocolCounters After = totals();
  EXPECT_EQ(After.ElisionAttempts - Before.ElisionAttempts, 0u);
  EXPECT_GE(After.AtomicRmws - Before.AtomicRmws, 1u);
}

TEST(Interpreter, ProfileDrivenReclassification) {
  // A region with a write behind an almost-never-true condition: Writing
  // at first, ReadMostly after profiling + reclassification (Section 5).
  MethodBuilder B("mostly", 2, 2);
  auto Skip = B.newLabel();
  B.load(0).syncEnter();
  B.load(1).jumpIfZero(Skip);
  B.load(0).constant(1).putField(1);
  B.bind(Skip);
  B.load(0).getField(0).pop();
  B.syncExit();
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter::Options Opts;
  Opts.CollectProfile = true;
  Interpreter I(ctx(), std::move(M), Opts);
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::Writing);

  GuestObject *Obj = I.allocateObject();
  // Profile: 200 read-only executions, 1 writing execution.
  for (int N = 0; N < 200; ++N)
    I.invoke("mostly", {Value::ofRef(Obj), Value::ofInt(0)});
  I.invoke("mostly", {Value::ofRef(Obj), Value::ofInt(1)});
  I.reclassifyWithProfile();
  EXPECT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadMostly);

  // Execution still works in both directions after reclassification.
  ProtocolCounters Before = totals();
  I.invoke("mostly", {Value::ofRef(Obj), Value::ofInt(0)});
  I.invoke("mostly", {Value::ofRef(Obj), Value::ofInt(1)});
  ProtocolCounters After = totals();
  EXPECT_EQ(Obj->F[1].read(), 1);
  EXPECT_GE(After.ElisionSuccesses - Before.ElisionSuccesses, 2u);
}

TEST(Interpreter, ReadMostlyUpgradeWritesCorrectly) {
  MethodBuilder B("upd", 2, 2);
  B.annotateReadMostly();
  auto Skip = B.newLabel();
  B.load(0).syncEnter();
  B.load(1).jumpIfZero(Skip);
  B.load(0).load(0).getField(0).constant(1).add().putField(0);
  B.bind(Skip);
  B.syncExit();
  B.load(0).getField(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadMostly);
  GuestObject *Obj = I.allocateObject();
  EXPECT_EQ(I.invoke("upd", {Value::ofRef(Obj), Value::ofInt(1)}).asInt(), 1);
  EXPECT_EQ(I.invoke("upd", {Value::ofRef(Obj), Value::ofInt(0)}).asInt(), 1);
  EXPECT_EQ(I.invoke("upd", {Value::ofRef(Obj), Value::ofInt(1)}).asInt(), 2);
  EXPECT_TRUE(lockword::soleroIsFree(Obj->Hdr.word().load()));
}

TEST(Interpreter, ConcurrentGuestCountersAreExact) {
  // Guest threads increment a shared counter in a writing region while
  // other guest threads read it in an elided region: the final count must
  // be exact and reads monotonic.
  MethodBuilder Inc("inc", 1, 1);
  Inc.load(0).syncEnter();
  Inc.load(0).load(0).getField(0).constant(1).add().putField(0);
  Inc.syncExit();
  Inc.constant(0).ret();
  MethodBuilder Get("get", 1, 2);
  Get.load(0).syncEnter();
  Get.load(0).getField(0).store(1);
  Get.syncExit();
  Get.load(1).ret();
  Module M;
  M.addMethod(Inc.take());
  M.addMethod(Get.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *Obj = I.allocateObject();

  constexpr int Writers = 2, Readers = 2, Incs = 4000;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Monotonic{true};
  std::vector<std::thread> Ts;
  for (int W = 0; W < Writers; ++W)
    Ts.emplace_back([&] {
      for (int N = 0; N < Incs; ++N)
        I.invoke("inc", {Value::ofRef(Obj)});
    });
  for (int R = 0; R < Readers; ++R)
    Ts.emplace_back([&] {
      int64_t Last = 0;
      while (!Stop.load()) {
        int64_t V = I.invoke("get", {Value::ofRef(Obj)}).asInt();
        if (V < Last)
          Monotonic.store(false);
        Last = V;
      }
    });
  for (int W = 0; W < Writers; ++W)
    Ts[static_cast<std::size_t>(W)].join();
  Stop.store(true);
  for (int T = Writers; T < Writers + Readers; ++T)
    Ts[static_cast<std::size_t>(T)].join();
  EXPECT_EQ(Obj->F[0].read(), static_cast<int64_t>(Writers) * Incs);
  EXPECT_TRUE(Monotonic.load());
}

TEST(Interpreter, LoopInsideElidedRegionIsRescuable) {
  // A bounded loop inside a read-only region: back-edge check points run
  // (we assert via poll flag consumption) and the result is correct.
  // Locals: 0=obj, 1=n, 2=acc, 3=i. The loop only writes scratch locals
  // (2, 3) that are dead at region entry, so the region stays elidable.
  MethodBuilder B("sumN", 2, 4);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.load(0).syncEnter();
  B.constant(0).store(2);
  B.load(1).store(3);
  B.bind(Loop);
  B.load(3).jumpIfZero(Done);
  B.load(2).load(0).getField(0).add().store(2);
  B.load(3).constant(1).sub().store(3);
  B.jump(Loop);
  B.bind(Done);
  B.syncExit();
  B.load(2).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  ASSERT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadOnly);
  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(3);
  ThreadRegistry::current().PollFlag.store(1);
  EXPECT_EQ(I.invoke("sumN", {Value::ofRef(Obj), Value::ofInt(10)}).asInt(),
            30);
  // A back edge consumed the poll flag.
  EXPECT_EQ(ThreadRegistry::current().PollFlag.load(), 0u);
}

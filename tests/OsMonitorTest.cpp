//===- tests/OsMonitorTest.cpp - Fat-monitor machinery tests --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/OsMonitor.h"

#include "runtime/MonitorTable.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace solero;
using namespace solero::lockword;

namespace {
constexpr std::chrono::microseconds Park{200};
constexpr SpinTiers Tiers{8, 4, 2};
} // namespace

TEST(OsMonitor, AcquireByInflatingFreeWord) {
  MonitorTable Table;
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  H.word().store(3 * CounterUnit); // a free SOLERO counter word
  OsMonitor &M = Table.monitorFor(H);
  ASSERT_EQ(M.acquireOrPark(H, SoleroFlatProtocol, TS, Park),
            OsMonitor::ParkResult::AcquiredFat);
  EXPECT_TRUE(isInflated(H.word().load()));
  EXPECT_TRUE(M.isOwner(TS));
  M.fatExit(H, TS);
  // Deflation restores counter + 0x100 so spanning readers notice.
  EXPECT_EQ(H.word().load(), 4 * CounterUnit);
  EXPECT_FALSE(M.isOwner(TS));
}

TEST(OsMonitor, RecursiveFatEntry) {
  MonitorTable Table;
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  OsMonitor &M = Table.monitorFor(H);
  ASSERT_EQ(M.acquireOrPark(H, ConvFlatProtocol, TS, Park),
            OsMonitor::ParkResult::AcquiredFat);
  ASSERT_EQ(M.acquireOrPark(H, ConvFlatProtocol, TS, Park),
            OsMonitor::ParkResult::AcquiredFat);
  M.fatExit(H, TS);
  EXPECT_TRUE(M.isOwner(TS)); // one level still held
  EXPECT_TRUE(isInflated(H.word().load()));
  M.fatExit(H, TS);
  EXPECT_EQ(H.word().load(), 0u); // conventional restore word
}

TEST(OsMonitor, ContendedAcquireFallsBackToFatAndWakes) {
  MonitorTable Table;
  ObjectHeader H;
  // Simulate a flat lock held by a fictitious other thread.
  uint64_t OtherTid = 400ull << TidShift;
  H.word().store(OtherTid);
  std::atomic<bool> Acquired{false};
  std::thread Contender([&] {
    ThreadState &CTS = ThreadRegistry::current();
    AcquireResult R =
        contendedAcquire(Table, H, ConvFlatProtocol, CTS, Tiers, Park);
    EXPECT_EQ(R.Kind, AcquireKind::Fat);
    Acquired.store(true);
    Table.monitorFor(H).fatExit(H, CTS);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(Acquired.load()); // excluded while "held"
  // FLC must have been set by the parked contender.
  EXPECT_TRUE((H.word().load() & FlcBit) != 0);
  // The fictitious holder releases (blind store, as the fast path would).
  H.word().store(0, std::memory_order_release);
  Table.monitorFor(H).notifyFlatRelease();
  Contender.join();
  EXPECT_TRUE(Acquired.load());
  EXPECT_EQ(H.word().load(), 0u); // deflated on final exit
}

TEST(OsMonitor, NoDeflationWhileWaitSetNonEmpty) {
  MonitorTable Table;
  ObjectHeader H;
  OsMonitor &M = Table.monitorFor(H);
  std::atomic<bool> InWait{false};
  std::thread Waiter([&] {
    ThreadState &WTS = ThreadRegistry::current();
    ASSERT_EQ(M.acquireOrPark(H, ConvFlatProtocol, WTS, Park),
              OsMonitor::ParkResult::AcquiredFat);
    InWait.store(true);
    M.fatWait(H, WTS, std::chrono::microseconds(50000)); // long park
    M.fatExit(H, WTS);
  });
  while (!InWait.load())
    std::this_thread::yield();
  // Give the waiter time to actually enter fatWait and release the lock.
  while (M.waitSetSize() == 0)
    std::this_thread::yield();
  // Acquire and release: the monitor must NOT deflate (wait set pins it).
  ThreadState &TS = ThreadRegistry::current();
  ASSERT_EQ(M.acquireOrPark(H, ConvFlatProtocol, TS, Park),
            OsMonitor::ParkResult::AcquiredFat);
  M.fatNotify(TS, /*All=*/true);
  M.fatExit(H, TS);
  EXPECT_TRUE(isInflated(H.word().load()));
  Waiter.join();
  EXPECT_EQ(H.word().load(), 0u); // deflates once the wait set drained
}

TEST(OsMonitor, InflateHeldByOwnerCarriesState) {
  MonitorTable Table;
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  // Thread "holds" the flat SOLERO lock with recursion 2.
  uint64_t Held = soleroHeldWord(TS.tidBits()) + 2 * SoleroRecUnit;
  H.word().store(Held);
  OsMonitor &M = Table.monitorFor(H);
  M.inflateHeldByOwner(H, TS, /*Recursion=*/2, /*RestoreW=*/7 * CounterUnit);
  EXPECT_TRUE(isInflated(H.word().load()));
  M.fatExit(H, TS);
  M.fatExit(H, TS);
  EXPECT_TRUE(M.isOwner(TS)); // recursion 2 -> still held after two exits
  M.fatExit(H, TS);
  EXPECT_EQ(H.word().load(), 7 * CounterUnit);
}

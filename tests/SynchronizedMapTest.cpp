//===- tests/SynchronizedMapTest.cpp - Lock x map integration tests -------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Typed integration tests: every lock policy (Lock, RWLock, SOLERO and its
/// ablation variants) must give the synchronized maps linearizable
/// behaviour under concurrent readers and writers.
///
//===----------------------------------------------------------------------===//

#include "collections/SynchronizedMap.h"

#include "collections/JavaHashMap.h"
#include "collections/JavaTreeMap.h"
#include "support/Barrier.h"
#include "support/Rng.h"
#include "workloads/LockPolicies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;

namespace {

RuntimeConfig testConfig() {
  RuntimeConfig C;
  // Run the async ticker: TreeMap speculation relies on it to break
  // inconsistent-read descent loops promptly.
  C.AsyncEventPeriod = std::chrono::microseconds(1000);
  C.StartEventBus = true;
  return C;
}

/// One context shared by all typed tests (contexts are cheap but the event
/// bus thread is not worth churning per test).
RuntimeContext &sharedContext() {
  static RuntimeContext Ctx(testConfig());
  return Ctx;
}

template <typename PolicyT> struct PolicyFactory {
  static PolicyT make() { return PolicyT(sharedContext()); }
};

struct UnelidedSoleroPolicy : SoleroPolicy {
  explicit UnelidedSoleroPolicy(RuntimeContext &Ctx)
      : SoleroPolicy(Ctx, unelidedSoleroConfig()) {}
  static const char *name() { return "Unelided-SOLERO"; }
};

struct WeakBarrierSoleroPolicy : SoleroPolicy {
  explicit WeakBarrierSoleroPolicy(RuntimeContext &Ctx)
      : SoleroPolicy(Ctx, weakBarrierSoleroConfig()) {}
  static const char *name() { return "WeakBarrier-SOLERO"; }
};

template <typename PolicyT>
class SynchronizedMapTest : public ::testing::Test {};

using AllPolicies =
    ::testing::Types<TasukiPolicy, RwPolicy, SoleroPolicy,
                     UnelidedSoleroPolicy, WeakBarrierSoleroPolicy>;

class PolicyNames {
public:
  template <typename T> static std::string GetName(int) { return T::name(); }
};

TYPED_TEST_SUITE(SynchronizedMapTest, AllPolicies, PolicyNames);

} // namespace

TYPED_TEST(SynchronizedMapTest, HashMapSingleThreadBasics) {
  SynchronizedMap<JavaHashMap<int64_t, int64_t>, TypeParam> M(sharedContext());
  EXPECT_TRUE(M.put(1, 10));
  EXPECT_EQ(M.get(1).value(), 10);
  EXPECT_TRUE(M.contains(1));
  EXPECT_TRUE(M.remove(1));
  EXPECT_EQ(M.size(), 0u);
}

TYPED_TEST(SynchronizedMapTest, TreeMapSingleThreadBasics) {
  SynchronizedMap<JavaTreeMap<int64_t, int64_t>, TypeParam> M(sharedContext());
  for (int64_t I = 0; I < 500; ++I)
    M.put(I, I * 2);
  EXPECT_EQ(M.size(), 500u);
  for (int64_t I = 0; I < 500; ++I)
    EXPECT_EQ(M.get(I).value(), I * 2);
}

TYPED_TEST(SynchronizedMapTest, HashMapReadersSeeMonotonicValues) {
  // A single writer increments per-key counters; since every write is a
  // critical section, any reader must observe per-key values that only
  // grow. A torn or inconsistent read would break monotonicity.
  constexpr int64_t Keys = 64;
  constexpr int Rounds = 15000;
  constexpr int Readers = 3;
  SynchronizedMap<JavaHashMap<int64_t, int64_t>, TypeParam> M(sharedContext());
  for (int64_t K = 0; K < Keys; ++K)
    M.put(K, 0);
  std::atomic<bool> Stop{false};
  std::atomic<bool> Violation{false};
  SpinBarrier Start(Readers + 1);

  std::thread Writer([&] {
    Start.arriveAndWait();
    Xoshiro256StarStar Rng(1);
    for (int I = 0; I < Rounds; ++I) {
      int64_t K = static_cast<int64_t>(Rng.nextBounded(Keys));
      int64_t Cur = M.get(K).value();
      M.put(K, Cur + 1);
    }
    Stop.store(true);
  });
  std::vector<std::thread> Rs;
  for (int R = 0; R < Readers; ++R)
    Rs.emplace_back([&, R] {
      std::vector<int64_t> LastSeen(Keys, 0);
      Xoshiro256StarStar Rng(100 + R);
      Start.arriveAndWait();
      while (!Stop.load()) {
        int64_t K = static_cast<int64_t>(Rng.nextBounded(Keys));
        auto V = M.get(K);
        if (!V.has_value() || *V < LastSeen[K]) {
          Violation.store(true);
          return;
        }
        LastSeen[K] = *V;
      }
    });
  Writer.join();
  for (auto &T : Rs)
    T.join();
  EXPECT_FALSE(Violation.load());
}

TYPED_TEST(SynchronizedMapTest, TreeMapConcurrentChurnKeepsInvariants) {
  // Writers churn disjoint key ranges while readers look up random keys;
  // afterwards the tree must satisfy the red-black invariants and contain
  // exactly the writers' final state.
  constexpr int Writers = 2, Readers = 2;
  constexpr int64_t RangePerWriter = 128;
  constexpr int OpsPerWriter = 8000;
  SynchronizedMap<JavaTreeMap<int64_t, int64_t>, TypeParam> M(sharedContext());
  std::atomic<bool> Stop{false};
  SpinBarrier Start(Writers + Readers);
  std::vector<std::vector<int64_t>> Final(Writers);

  std::vector<std::thread> Ts;
  for (int W = 0; W < Writers; ++W)
    Ts.emplace_back([&, W] {
      Final[W].assign(RangePerWriter, -1);
      Xoshiro256StarStar Rng(17 + W);
      Start.arriveAndWait();
      for (int I = 0; I < OpsPerWriter; ++I) {
        int64_t Off = static_cast<int64_t>(Rng.nextBounded(RangePerWriter));
        int64_t Key = W * RangePerWriter + Off;
        if (Rng.nextPercent(60)) {
          M.put(Key, I);
          Final[W][Off] = I;
        } else {
          M.remove(Key);
          Final[W][Off] = -1;
        }
      }
    });
  for (int R = 0; R < Readers; ++R)
    Ts.emplace_back([&, R] {
      Xoshiro256StarStar Rng(91 + R);
      Start.arriveAndWait();
      while (!Stop.load()) {
        int64_t Key =
            static_cast<int64_t>(Rng.nextBounded(Writers * RangePerWriter));
        (void)M.get(Key);
      }
    });
  for (int W = 0; W < Writers; ++W)
    Ts[W].join();
  Stop.store(true);
  for (int T = Writers; T < Writers + Readers; ++T)
    Ts[T].join();

  EXPECT_GT(M.unsynchronized().checkRedBlackInvariants(), 0);
  for (int W = 0; W < Writers; ++W)
    for (int64_t Off = 0; Off < RangePerWriter; ++Off) {
      int64_t Key = W * RangePerWriter + Off;
      auto V = M.get(Key);
      if (Final[W][Off] < 0)
        EXPECT_FALSE(V.has_value()) << "key " << Key;
      else {
        ASSERT_TRUE(V.has_value()) << "key " << Key;
        EXPECT_EQ(*V, Final[W][Off]);
      }
    }
}

TYPED_TEST(SynchronizedMapTest, HashMapSizeNeverGoesNegative) {
  SynchronizedMap<JavaHashMap<int64_t, int64_t>, TypeParam> M(sharedContext());
  constexpr int Threads = 4, Iters = 3000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Xoshiro256StarStar Rng(T);
      for (int I = 0; I < Iters; ++I) {
        int64_t K = static_cast<int64_t>(Rng.nextBounded(64));
        if (Rng.nextPercent(50))
          M.put(K, I);
        else
          M.remove(K);
        std::size_t S = M.size();
        ASSERT_LE(S, 64u);
      }
    });
  for (auto &T : Ts)
    T.join();
}

//===- tests/PropertyTest.cpp - Parameterized property sweeps -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// TEST_P property sweeps: randomized op sequences checked against
/// reference models across seeds and mix parameters, protocol-equivalence
/// properties (SOLERO must be observationally identical to the
/// conventional lock), and lock-word algebra over random values.
///
//===----------------------------------------------------------------------===//

#include "collections/JavaHashMap.h"
#include "collections/JavaTreeMap.h"
#include "collections/SynchronizedMap.h"
#include "support/Rng.h"
#include "workloads/LockPolicies.h"

#include <gtest/gtest.h>

#include <map>
#include <type_traits>
#include <thread>
#include <tuple>

using namespace solero;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

} // namespace

// --- Randomized maps vs reference model, swept over (seed, write%) ------

class MapModelProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(MapModelProperty, HashMapMatchesModelUnderSolero) {
  auto [Seed, WritePct] = GetParam();
  SynchronizedMap<JavaHashMap<int64_t, int64_t>, SoleroPolicy> M(ctx());
  std::map<int64_t, int64_t> Ref;
  Xoshiro256StarStar Rng(Seed);
  for (int Op = 0; Op < 8000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng.nextBounded(256));
    if (Rng.nextBounded(100) < WritePct) {
      if (Rng.nextPercent(70)) {
        int64_t V = static_cast<int64_t>(Rng.next() >> 1);
        ASSERT_EQ(M.put(K, V), Ref.insert_or_assign(K, V).second);
      } else {
        ASSERT_EQ(M.remove(K), Ref.erase(K) == 1);
      }
    } else {
      auto Got = M.get(K);
      auto It = Ref.find(K);
      ASSERT_EQ(Got.has_value(), It != Ref.end());
      if (Got) {
        ASSERT_EQ(*Got, It->second);
      }
    }
  }
  ASSERT_EQ(M.size(), Ref.size());
}

TEST_P(MapModelProperty, TreeMapMatchesModelUnderSolero) {
  auto [Seed, WritePct] = GetParam();
  SynchronizedMap<JavaTreeMap<int64_t, int64_t>, SoleroPolicy> M(ctx());
  std::map<int64_t, int64_t> Ref;
  Xoshiro256StarStar Rng(Seed * 2654435761ULL + 1);
  for (int Op = 0; Op < 8000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng.nextBounded(256));
    if (Rng.nextBounded(100) < WritePct) {
      if (Rng.nextPercent(70)) {
        int64_t V = static_cast<int64_t>(Rng.next() >> 1);
        ASSERT_EQ(M.put(K, V), Ref.insert_or_assign(K, V).second);
      } else {
        ASSERT_EQ(M.remove(K), Ref.erase(K) == 1);
      }
    } else {
      auto Got = M.get(K);
      auto It = Ref.find(K);
      ASSERT_EQ(Got.has_value(), It != Ref.end());
      if (Got) {
        ASSERT_EQ(*Got, It->second);
      }
    }
  }
  ASSERT_EQ(M.size(), Ref.size());
  ASSERT_GT(M.unsynchronized().checkRedBlackInvariants(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapModelProperty,
    ::testing::Combine(::testing::Values(1u, 42u, 0xdeadu, 77777u),
                       ::testing::Values(0u, 5u, 30u, 80u)),
    [](const ::testing::TestParamInfo<MapModelProperty::ParamType> &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_w" +
             std::to_string(std::get<1>(Info.param));
    });

// --- Protocol observational equivalence ----------------------------------

class ProtocolEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolEquivalence, SoleroAndTasukiProduceIdenticalResults) {
  // The same deterministic op sequence through SOLERO and through the
  // conventional lock must produce identical observable results.
  uint64_t Seed = GetParam();
  auto Run = [&]<typename Policy>(std::type_identity<Policy>) {
    SynchronizedMap<JavaHashMap<int64_t, int64_t>, Policy> M(ctx());
    Xoshiro256StarStar Rng(Seed);
    uint64_t Digest = 0;
    for (int Op = 0; Op < 5000; ++Op) {
      int64_t K = static_cast<int64_t>(Rng.nextBounded(128));
      switch (Rng.nextBounded(4)) {
      case 0:
        Digest = Digest * 31 + static_cast<uint64_t>(
                                   M.put(K, static_cast<int64_t>(Op)));
        break;
      case 1:
        Digest = Digest * 31 + static_cast<uint64_t>(M.remove(K));
        break;
      case 2:
        Digest = Digest * 31 + static_cast<uint64_t>(M.contains(K));
        break;
      default: {
        auto V = M.get(K);
        Digest = Digest * 31 + static_cast<uint64_t>(V ? *V : -1);
      }
      }
    }
    return Digest;
  };
  uint64_t SoleroDigest = Run(std::type_identity<SoleroPolicy>{});
  uint64_t TasukiDigest = Run(std::type_identity<TasukiPolicy>{});
  uint64_t RwDigest = Run(std::type_identity<RwPolicy>{});
  EXPECT_EQ(SoleroDigest, TasukiDigest);
  EXPECT_EQ(SoleroDigest, RwDigest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolEquivalence,
                         ::testing::Values(3u, 1999u, 0xabcdefu, 31337u,
                                           8675309u));

// --- Lock-word algebra over random values --------------------------------

class LockWordProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockWordProperty, HeldWordsAreNeverFree) {
  Xoshiro256StarStar Rng(GetParam());
  for (int I = 0; I < 10000; ++I) {
    uint64_t Tid = (Rng.nextBounded(500) + 1) << lockword::TidShift;
    uint64_t Rec = Rng.nextBounded(lockword::SoleroRecMax + 1);
    uint64_t Held =
        lockword::soleroHeldWord(Tid) + Rec * lockword::SoleroRecUnit;
    EXPECT_FALSE(lockword::soleroIsFree(Held));
    EXPECT_TRUE(lockword::soleroHeldBy(Held, Tid));
    EXPECT_EQ(lockword::soleroRecursion(Held), Rec);
    // No other thread id matches.
    uint64_t OtherTid = Tid + (1ULL << lockword::TidShift);
    EXPECT_FALSE(lockword::soleroHeldBy(Held, OtherTid));
  }
}

TEST_P(LockWordProperty, CounterWordsAreFreeAndDistinct) {
  Xoshiro256StarStar Rng(GetParam());
  for (int I = 0; I < 10000; ++I) {
    uint64_t C = Rng.nextBounded(1ULL << 40) * lockword::CounterUnit;
    EXPECT_TRUE(lockword::soleroIsFree(C));
    EXPECT_FALSE(lockword::isInflated(C));
    // A counter word never matches an inflated or held encoding.
    EXPECT_NE(C | lockword::InflationBit, C);
    EXPECT_NE(lockword::soleroHeldWord(C | (1ULL << lockword::TidShift)), C);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockWordProperty,
                         ::testing::Values(11u, 222u, 3333u));

// --- Elision engine properties under randomized interference -------------

class ElisionInterference : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElisionInterference, SnapshotsAlwaysConsistentAtAnyWriteRate) {
  // Property: whatever the writer rate, an elided two-field snapshot is
  // never torn. Parameter = writer duty cycle in percent.
  unsigned Duty = GetParam();
  SoleroLock L(ctx());
  ObjectHeader H;
  SharedField<int64_t> A{0}, B{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Torn{false};
  std::thread Writer([&] {
    Xoshiro256StarStar Rng(Duty);
    for (int I = 1; I <= 20000; ++I) {
      if (Rng.nextBounded(100) < Duty)
        L.synchronizedWrite(H, [&] {
          A.write(I);
          B.write(-I);
        });
      else
        cpuRelax();
    }
    Stop.store(true);
  });
  std::thread Reader([&] {
    while (!Stop.load()) {
      auto P = L.synchronizedReadOnly(H, [&](ReadGuard &) {
        return std::pair<int64_t, int64_t>(A.read(), B.read());
      });
      if (P.first != -P.second)
        Torn.store(true);
    }
  });
  Writer.join();
  Reader.join();
  EXPECT_FALSE(Torn.load());
}

INSTANTIATE_TEST_SUITE_P(Duty, ElisionInterference,
                         ::testing::Values(1u, 10u, 50u, 100u));

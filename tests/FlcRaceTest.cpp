//===- tests/FlcRaceTest.cpp - FLC lost-wakeup reproduction ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Deterministic reproduction of the FLC lost-wakeup release race
/// (DESIGN.md §12): a contender's FLC CAS lands between the releaser's
/// lock-word load and its release, and a blind release store would clobber
/// the bit — the contender then parks with nobody to notify it and stalls
/// for a full timed park. The injection hook stalls the releaser inside
/// exactly that window until the contender's FLC bit is visible, so the
/// adversarial interleaving happens on every run instead of once per many
/// million. With the CAS-release fix the contender is woken promptly; on
/// the unfixed paths these tests time out at ParkMicros.
///
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"
#include "locks/TasukiLock.h"
#include "stress/InjectionPoint.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#if defined(SOLERO_INJECTION_POINTS)

using namespace solero;
using namespace solero::lockword;

namespace {

/// Park long enough that a lost wakeup is unmistakable against scheduler
/// noise: fixed paths release in well under WakeupBudget; an unfixed path
/// stalls the contender for the full ParkMicros.
constexpr auto ParkMicros = std::chrono::microseconds(200000); // 200ms
constexpr double WakeupBudgetSeconds = 0.1;

RuntimeConfig raceConfig() {
  RuntimeConfig C;
  C.Tiers = SpinTiers{1, 1, 1}; // exhaust spinning instantly: straight to FLC
  C.ParkMicros = ParkMicros;
  C.AsyncEventPeriod = std::chrono::microseconds(0);
  C.StartEventBus = false;
  return C;
}

/// One-shot hook holding the releaser inside a release window (between its
/// lock-word load and the release) until the contender's FLC CAS is
/// visible in the word. WindowOpen tells the contender when to start so
/// its CAS is guaranteed to land inside the window, not before it.
struct ReleaseStall {
  ObjectHeader *H = nullptr;
  inject::Site Window = inject::Site::SoleroExitWriteRelease;
  std::atomic<bool> Armed{true};
  std::atomic<bool> WindowOpen{false};

  static void hook(void *Ctx, inject::Site S) {
    auto *St = static_cast<ReleaseStall *>(Ctx);
    if (St == nullptr || S != St->Window)
      return;
    if (!St->Armed.exchange(false, std::memory_order_acq_rel))
      return;
    St->WindowOpen.store(true, std::memory_order_release);
    Stopwatch W;
    while ((St->H->word().load(std::memory_order_acquire) & FlcBit) == 0 &&
           W.elapsedSeconds() < 5.0)
      std::this_thread::yield();
  }
};

/// Runs \p Release on the main thread with the stall hook armed on
/// \p Window, and \p Contend on a second thread once the window opens.
/// Returns the contender's acquisition latency in seconds.
template <typename ReleaseFn, typename ContendFn>
double raceOnce(ObjectHeader &H, inject::Site Window, ReleaseFn &&Release,
                ContendFn &&Contend) {
  ReleaseStall St;
  St.H = &H;
  St.Window = Window;
  inject::setHook(&ReleaseStall::hook, &St);
  double ContenderSeconds = -1.0;
  std::thread Contender([&] {
    Stopwatch W;
    while (!St.WindowOpen.load(std::memory_order_acquire) &&
           W.elapsedSeconds() < 5.0)
      std::this_thread::yield();
    Stopwatch Acq;
    Contend();
    ContenderSeconds = Acq.elapsedSeconds();
  });
  Release();
  Contender.join();
  inject::setHook(nullptr, nullptr);
  return ContenderSeconds;
}

} // namespace

TEST(FlcRace, SoleroExitWriteNotifiesFlcSetInReleaseWindow) {
  RuntimeContext Ctx(raceConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();

  uint64_t V1 = L.enterWrite(H, TS);
  double Latency = raceOnce(
      H, inject::Site::SoleroExitWriteRelease,
      [&] { L.exitWrite(H, TS, V1); },
      [&] { L.synchronizedWrite(H, [] {}); });

  EXPECT_GE(Latency, 0.0) << "contender never saw the release window open";
  EXPECT_LT(Latency, WakeupBudgetSeconds)
      << "contender stalled a full timed park: FLC bit clobbered by the "
         "release (lost wakeup)";
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST(FlcRace, SoleroReadExitNotifiesFlcSetInReleaseWindow) {
  RuntimeContext Ctx(raceConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;

  // Drive the read-fallback holding path: a helper write mid-speculation
  // fails the first attempt, so the engine re-executes while holding the
  // flat lock and releases through slowReadExit's hold_flat_lock leg.
  std::atomic<int> Execs{0};
  double Latency = raceOnce(
      H, inject::Site::SoleroReadExitRelease,
      [&] {
        L.synchronizedReadOnly(H, [&](ReadGuard &G) {
          if (G.speculative() && Execs.fetch_add(1) == 0) {
            std::thread Writer([&] { L.synchronizedWrite(H, [] {}); });
            Writer.join(); // the word changed: this attempt must fail
          }
        });
      },
      [&] { L.synchronizedWrite(H, [] {}); });

  EXPECT_GE(Latency, 0.0) << "read fallback never reached its release window";
  EXPECT_LT(Latency, WakeupBudgetSeconds)
      << "contender stalled a full timed park: FLC bit clobbered by the "
         "read-exit release (lost wakeup)";
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST(FlcRace, TasukiExitNotifiesFlcSetInReleaseWindow) {
  RuntimeContext Ctx(raceConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;

  L.enter(H);
  double Latency = raceOnce(
      H, inject::Site::TasukiExitRelease, [&] { L.exit(H); },
      [&] { L.synchronizedWrite(H, [] {}); });

  EXPECT_GE(Latency, 0.0) << "contender never saw the release window open";
  EXPECT_LT(Latency, WakeupBudgetSeconds)
      << "contender stalled a full timed park: FLC bit clobbered by the "
         "release (lost wakeup)";
  EXPECT_EQ(H.word().load(), 0u);
}

#endif // SOLERO_INJECTION_POINTS

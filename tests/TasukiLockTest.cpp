//===- tests/TasukiLockTest.cpp - Conventional lock tests -----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/TasukiLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::lockword;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

class TasukiLockTest : public ::testing::Test {
protected:
  TasukiLockTest() : Ctx(quietConfig()), L(Ctx) {}
  RuntimeContext Ctx;
  TasukiLock L;
  ObjectHeader H;
};

} // namespace

TEST_F(TasukiLockTest, FastPathInstallsThreadId) {
  ThreadState &TS = ThreadRegistry::current();
  L.enter(H);
  EXPECT_EQ(H.word().load(), TS.tidBits());
  EXPECT_TRUE(L.heldByCurrentThread(H));
  L.exit(H);
  EXPECT_EQ(H.word().load(), 0u);
  EXPECT_FALSE(L.heldByCurrentThread(H));
}

TEST_F(TasukiLockTest, RecursionUsesRecursionBits) {
  ThreadState &TS = ThreadRegistry::current();
  L.enter(H);
  L.enter(H);
  L.enter(H);
  EXPECT_EQ(convRecursion(H.word().load()), 2u);
  EXPECT_EQ(highField(H.word().load()), TS.tidBits());
  L.exit(H);
  EXPECT_EQ(convRecursion(H.word().load()), 1u);
  L.exit(H);
  L.exit(H);
  EXPECT_EQ(H.word().load(), 0u);
}

TEST_F(TasukiLockTest, RecursionSaturationInflates) {
  // ConvRecMax nested levels fit in the bits; one more must inflate
  // (paper Section 2.1: "inflation can also occur when the bits of the
  // recursion counter saturate").
  const int Depth = static_cast<int>(ConvRecMax) + 2;
  for (int I = 0; I < Depth; ++I)
    L.enter(H);
  EXPECT_TRUE(isInflated(H.word().load()));
  EXPECT_TRUE(L.heldByCurrentThread(H));
  for (int I = 0; I < Depth; ++I) {
    EXPECT_TRUE(L.heldByCurrentThread(H));
    L.exit(H);
  }
  // Fully released; the final fat exit deflates back to the flat free word.
  EXPECT_EQ(H.word().load(), 0u);
  EXPECT_FALSE(L.heldByCurrentThread(H));
}

TEST_F(TasukiLockTest, SynchronizedWriteReturnsValue) {
  int X = L.synchronizedWrite(H, [&] { return 41 + 1; });
  EXPECT_EQ(X, 42);
  EXPECT_EQ(H.word().load(), 0u);
}

TEST_F(TasukiLockTest, ExceptionReleasesLock) {
  EXPECT_THROW(L.synchronizedWrite(H, [&]() -> int {
    throw std::runtime_error("guest");
  }),
               std::runtime_error);
  EXPECT_EQ(H.word().load(), 0u);
}

TEST_F(TasukiLockTest, ContentionInflatesAndDeflates) {
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  std::atomic<int> Stage{0};
  L.enter(H);
  std::thread Contender([&] {
    Stage.store(1);
    L.enter(H); // must park: the main thread holds the lock
    Stage.store(2);
    // We acquired through the monitor: the word designates fat mode.
    EXPECT_TRUE(isInflated(H.word().load()));
    EXPECT_TRUE(L.heldByCurrentThread(H));
    L.exit(H);
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  // Give the contender time to finish spinning and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Stage.load(), 1); // still excluded
  L.exit(H);
  Contender.join();
  EXPECT_EQ(Stage.load(), 2);
  // Fully released: deflated back to the flat free word.
  EXPECT_EQ(H.word().load(), 0u);
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_GE(After.Inflations - Before.Inflations, 1u);
  EXPECT_GE(After.Deflations - Before.Deflations, 1u);
}

TEST_F(TasukiLockTest, MutualExclusionUnderContention) {
  constexpr int Threads = 4;
  constexpr int Iters = 5000;
  int64_t Unprotected = 0; // plain int: only safe if exclusion holds
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I)
        L.synchronizedWrite(H, [&] { ++Unprotected; });
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Unprotected, static_cast<int64_t>(Threads) * Iters);
  EXPECT_EQ(H.word().load(), 0u);
}

TEST_F(TasukiLockTest, ReadOnlySectionIsPlainMutualExclusion) {
  int V = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
    EXPECT_FALSE(G.speculative());
    EXPECT_TRUE(L.heldByCurrentThread(H));
    return 7;
  });
  EXPECT_EQ(V, 7);
  EXPECT_EQ(H.word().load(), 0u);
}

TEST_F(TasukiLockTest, TwoLocksAreIndependent) {
  ObjectHeader H2;
  L.enter(H);
  L.enter(H2);
  EXPECT_TRUE(L.heldByCurrentThread(H));
  EXPECT_TRUE(L.heldByCurrentThread(H2));
  L.exit(H);
  EXPECT_FALSE(L.heldByCurrentThread(H));
  EXPECT_TRUE(L.heldByCurrentThread(H2));
  L.exit(H2);
}

//===- tests/ArrayTest.cpp - CSIR array tests -----------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"
#include "jit/ReadOnlyClassifier.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

} // namespace

TEST(Arrays, NewArrayLoadStoreRoundTrip) {
  // arr = new[5]; arr[2] = 42; return arr[2] + arr.length;
  MethodBuilder B("roundtrip", 0, 1);
  B.constant(5).newArray().store(0);
  B.load(0).constant(2).constant(42).astore();
  B.load(0).constant(2).aload();
  B.load(0).arrayLen().add();
  B.ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  EXPECT_EQ(I.invoke("roundtrip", {}).asInt(), 47);
}

TEST(Arrays, FreshArrayIsZeroed) {
  MethodBuilder B("zeroed", 0, 1);
  B.constant(8).newArray().store(0);
  B.load(0).constant(7).aload().ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  EXPECT_EQ(I.invoke("zeroed", {}).asInt(), 0);
}

TEST(Arrays, BoundsAndSizeErrors) {
  auto RunExpectingError = [&](auto Build, GuestErrorKind Kind) {
    MethodBuilder B("bad", 0, 1);
    Build(B);
    Module M;
    M.addMethod(B.take());
    Interpreter I(ctx(), std::move(M));
    try {
      I.invoke("bad", {});
      FAIL() << "expected GuestError";
    } catch (GuestError &E) {
      EXPECT_EQ(E.Code, static_cast<int32_t>(Kind));
    }
  };
  RunExpectingError(
      [](MethodBuilder &B) {
        B.constant(3).newArray().store(0);
        B.load(0).constant(3).aload().ret(); // index == length
      },
      GuestErrorKind::ArrayIndexOutOfBounds);
  RunExpectingError(
      [](MethodBuilder &B) {
        B.constant(3).newArray().store(0);
        B.load(0).constant(-1).constant(5).astore();
        B.constant(0).ret();
      },
      GuestErrorKind::ArrayIndexOutOfBounds);
  RunExpectingError(
      [](MethodBuilder &B) {
        B.constant(-4).newArray().pop();
        B.constant(0).ret();
      },
      GuestErrorKind::NegativeArraySize);
}

TEST(Arrays, SummingLoopOverArray) {
  // sum = 0; for (i = 0; i < arr.length; i++) sum += arr[i];
  MethodBuilder B("sum", 1, 3);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.constant(0).store(1); // sum
  B.constant(0).store(2); // i
  B.bind(Loop);
  B.load(2).load(0).arrayLen().cmpLt().jumpIfZero(Done);
  B.load(1).load(0).load(2).aload().add().store(1);
  B.load(2).constant(1).add().store(2);
  B.jump(Loop);
  B.bind(Done);
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestArray *Arr = I.allocateArray(10);
  for (int64_t K = 0; K < 10; ++K)
    Arr->Elems[static_cast<std::size_t>(K)].write(K + 1);
  EXPECT_EQ(I.invoke("sum", {Value::ofArr(Arr)}).asInt(), 55);
}

TEST(Arrays, ArrayReadInsideRegionIsReadOnly) {
  // synchronized (obj) { x = arr[0]; } — ALoad is not a write.
  MethodBuilder B("readArr", 2, 3);
  B.load(0).syncEnter();
  B.load(1).constant(0).aload().store(2);
  B.syncExit();
  B.load(2).ret();
  Module M;
  M.addMethod(B.take());
  EXPECT_EQ(classifyModule(M).regions(0)[0].Kind, RegionKind::ReadOnly);
}

TEST(Arrays, ArrayWriteInsideRegionIsWriting) {
  // synchronized (obj) { arr[0] = 1; } — the Section 3.2 exclusion.
  MethodBuilder B("writeArr", 2, 2);
  B.load(0).syncEnter();
  B.load(1).constant(0).constant(1).astore();
  B.syncExit();
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  ClassifiedModule C = classifyModule(M);
  const ClassifiedRegion &R = C.regions(0)[0];
  EXPECT_EQ(R.Kind, RegionKind::Writing);
  EXPECT_EQ(R.primary().Code, DiagCode::ArrayWrite);
  EXPECT_NE(regionReason(M, R).find("astore"), std::string::npos);
}

TEST(Arrays, ElidedArrayReadExecutes) {
  MethodBuilder B("readArr", 2, 3);
  B.load(0).syncEnter();
  B.load(1).constant(1).aload().store(2);
  B.syncExit();
  B.load(2).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *Obj = I.allocateObject();
  GuestArray *Arr = I.allocateArray(4);
  Arr->Elems[1].write(99);
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(
      I.invoke("readArr", {Value::ofRef(Obj), Value::ofArr(Arr)}).asInt(),
      99);
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 1u);
}

TEST(Arrays, VerifierRejectsArrayStackUnderflow) {
  MethodBuilder B("bad", 0, 0);
  B.aload().ret(); // needs two operands
  Module M;
  M.addMethod(B.take());
  EXPECT_FALSE(verifyMethod(M, 0).Ok);
}

//===- tests/GuestMonitorTest.cpp - Guest wait/notify tests ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace solero;
using namespace solero::jit;

namespace {

RuntimeContext &ctx() {
  static RuntimeConfig Cfg = [] {
    RuntimeConfig C;
    C.ParkMicros = std::chrono::microseconds(200);
    return C;
  }();
  static RuntimeContext Ctx(Cfg);
  return Ctx;
}

/// consume(obj):  synchronized (obj) { while (obj.F0 == 0) wait(obj);
///                v = obj.F0; obj.F0 = 0; notifyAll(obj); return v; }
/// produce(obj,v):synchronized (obj) { while (obj.F0 != 0) wait(obj);
///                obj.F0 = v; notifyAll(obj); return v; }
Module buildHandshake() {
  Module M;
  {
    MethodBuilder B("consume", 1, 2);
    auto Check = B.newLabel(), Ready = B.newLabel();
    B.load(0).syncEnter();
    B.bind(Check);
    B.load(0).getField(0).jumpIfNonZero(Ready);
    B.load(0).monitorWait();
    B.jump(Check);
    B.bind(Ready);
    B.load(0).getField(0).store(1);
    B.load(0).constant(0).putField(0);
    B.load(0).monitorNotifyAll();
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("produce", 2, 2);
    auto Check = B.newLabel(), Empty = B.newLabel();
    B.load(0).syncEnter();
    B.bind(Check);
    B.load(0).getField(0).jumpIfZero(Empty);
    B.load(0).monitorWait();
    B.jump(Check);
    B.bind(Empty);
    B.load(0).load(1).putField(0);
    B.load(0).monitorNotifyAll();
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  return M;
}

} // namespace

TEST(GuestMonitor, WaitRegionsAreClassifiedWriting) {
  // wait/notify are side effects: never elidable (Section 3.2).
  Module M = buildHandshake();
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(0)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(C.regions(1)[0].Kind, RegionKind::Writing);
}

TEST(GuestMonitor, ProducerConsumerUnderSolero) {
  Interpreter I(ctx(), buildHandshake());
  GuestObject *Box = I.allocateObject();
  int64_t Sum = 0;
  std::thread Consumer([&] {
    for (int N = 0; N < 50; ++N)
      Sum += I.invoke("consume", {Value::ofRef(Box)}).asInt();
  });
  std::thread Producer([&] {
    for (int N = 1; N <= 50; ++N)
      I.invoke("produce", {Value::ofRef(Box), Value::ofInt(N)});
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Sum, 50 * 51 / 2);
  EXPECT_TRUE(lockword::soleroIsFree(Box->Hdr.word().load()));
}

TEST(GuestMonitor, ProducerConsumerUnderConventional) {
  Interpreter::Options Opts;
  Opts.UseConventionalLocks = true;
  Interpreter I(ctx(), buildHandshake(), Opts);
  GuestObject *Box = I.allocateObject();
  int64_t Sum = 0;
  std::thread Consumer([&] {
    for (int N = 0; N < 50; ++N)
      Sum += I.invoke("consume", {Value::ofRef(Box)}).asInt();
  });
  std::thread Producer([&] {
    for (int N = 1; N <= 50; ++N)
      I.invoke("produce", {Value::ofRef(Box), Value::ofInt(N)});
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Sum, 50 * 51 / 2);
  EXPECT_EQ(Box->Hdr.word().load(), 0u);
}

TEST(GuestMonitor, WaitOutsideMonitorThrows) {
  MethodBuilder B("badWait", 1, 1);
  B.load(0).monitorWait();
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *Obj = I.allocateObject();
  try {
    I.invoke("badWait", {Value::ofRef(Obj)});
    FAIL() << "expected GuestError";
  } catch (GuestError &E) {
    EXPECT_EQ(E.Code,
              static_cast<int32_t>(GuestErrorKind::IllegalMonitorState));
  }
}

TEST(GuestMonitor, NotifyOnDifferentObjectThrows) {
  // synchronized (a) { notify(b); } — b's monitor is not held.
  MethodBuilder B("cross", 2, 2);
  B.load(0).syncEnter();
  B.load(1).monitorNotify();
  B.syncExit();
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  Interpreter I(ctx(), std::move(M));
  GuestObject *A = I.allocateObject(), *Bo = I.allocateObject();
  try {
    I.invoke("cross", {Value::ofRef(A), Value::ofRef(Bo)});
    FAIL() << "expected GuestError";
  } catch (GuestError &E) {
    EXPECT_EQ(E.Code,
              static_cast<int32_t>(GuestErrorKind::IllegalMonitorState));
  }
  // The enclosing region's monitor was released by the unwinding.
  EXPECT_TRUE(lockword::soleroIsFree(A->Hdr.word().load()));
}

//===- tests/LockWordTest.cpp - Lock word layout unit tests ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/LockWord.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::lockword;

TEST(LockWord, PaperConstants) {
  // The fast paths depend on the paper's exact masks.
  EXPECT_EQ(InflationBit, 0x1u);
  EXPECT_EQ(FlcBit, 0x2u);
  EXPECT_EQ(SoleroLockBit, 0x4u);
  EXPECT_EQ(SoleroRecUnit, 0x8u);
  EXPECT_EQ(CounterUnit, 0x100u);
  EXPECT_EQ(ConvRecUnit, 0x4u);
}

TEST(LockWord, SoleroFreeWordPredicate) {
  EXPECT_TRUE(soleroIsFree(0));
  EXPECT_TRUE(soleroIsFree(0x100));
  EXPECT_TRUE(soleroIsFree(42ull << TidShift));
  EXPECT_FALSE(soleroIsFree(InflationBit));
  EXPECT_FALSE(soleroIsFree(FlcBit));
  EXPECT_FALSE(soleroIsFree(SoleroLockBit));
  EXPECT_FALSE(soleroIsFree(0x100 | SoleroLockBit));
}

TEST(LockWord, SoleroHeldWordRoundTrip) {
  uint64_t Tid = 7ull << TidShift;
  uint64_t Held = soleroHeldWord(Tid);
  EXPECT_TRUE(soleroHeldBy(Held, Tid));
  EXPECT_FALSE(soleroHeldBy(Held, 8ull << TidShift));
  EXPECT_EQ(soleroRecursion(Held), 0u);
  uint64_t Nested = Held + SoleroRecUnit * 3;
  EXPECT_TRUE(soleroHeldBy(Nested, Tid));
  EXPECT_EQ(soleroRecursion(Nested), 3u);
}

TEST(LockWord, SoleroRecursionMaxFitsInFiveBits) {
  uint64_t Tid = 1ull << TidShift;
  uint64_t W = soleroHeldWord(Tid) + SoleroRecUnit * SoleroRecMax;
  EXPECT_EQ(soleroRecursion(W), SoleroRecMax);
  EXPECT_TRUE(soleroHeldBy(W, Tid));
  // One more unit would overflow into the tid field.
  EXPECT_EQ((W + SoleroRecUnit) & SoleroRecMask, 0u);
}

TEST(LockWord, ConventionalHeldAndRecursion) {
  uint64_t Tid = 3ull << TidShift;
  EXPECT_TRUE(convHeldBy(Tid, Tid));
  EXPECT_FALSE(convHeldBy(0, 0));
  EXPECT_EQ(convRecursion(Tid + ConvRecUnit * 5), 5u);
  EXPECT_EQ(convRecursion(Tid + ConvRecUnit * ConvRecMax), ConvRecMax);
}

TEST(LockWord, InflatedWordRoundTrip) {
  for (uint32_t Idx : {0u, 1u, 17u, 65535u}) {
    uint64_t W = inflatedWord(Idx);
    EXPECT_TRUE(isInflated(W));
    EXPECT_FALSE(soleroIsFree(W));
    EXPECT_EQ(monitorIndex(W), Idx);
  }
}

TEST(LockWord, CounterIncrementPreservesFreedom) {
  uint64_t V = 0;
  for (int I = 0; I < 1000; ++I) {
    EXPECT_TRUE(soleroIsFree(V));
    V += CounterUnit;
  }
  EXPECT_EQ(V, 1000u * CounterUnit);
}

TEST(LockWord, HighFieldMasksLowBits) {
  EXPECT_EQ(highField(0x1ff), 0x100u);
  EXPECT_EQ(highField(0xff), 0u);
}

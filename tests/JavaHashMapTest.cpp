//===- tests/JavaHashMapTest.cpp - Hash map tests -------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "collections/JavaHashMap.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <unordered_map>

using namespace solero;

TEST(JavaHashMap, PutGetRemoveBasics) {
  JavaHashMap<int64_t, int64_t> M;
  EXPECT_EQ(M.size(), 0u);
  EXPECT_FALSE(M.get(1).has_value());
  EXPECT_TRUE(M.put(1, 100));
  EXPECT_FALSE(M.put(1, 200)); // update, not insert
  EXPECT_EQ(M.get(1).value(), 200);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_TRUE(M.remove(1));
  EXPECT_FALSE(M.remove(1));
  EXPECT_EQ(M.size(), 0u);
  EXPECT_FALSE(M.contains(1));
}

TEST(JavaHashMap, ManyKeysAcrossResizes) {
  JavaHashMap<int64_t, int64_t> M(16);
  const int N = 5000;
  for (int64_t I = 0; I < N; ++I)
    EXPECT_TRUE(M.put(I, I * 3));
  EXPECT_EQ(M.size(), static_cast<std::size_t>(N));
  EXPECT_GT(M.capacity(), 16u); // resized
  for (int64_t I = 0; I < N; ++I) {
    auto V = M.get(I);
    ASSERT_TRUE(V.has_value()) << "missing key " << I;
    EXPECT_EQ(*V, I * 3);
  }
  EXPECT_FALSE(M.get(N + 1).has_value());
}

TEST(JavaHashMap, CollidingKeysChainCorrectly) {
  // Small fixed capacity forces long chains.
  JavaHashMap<int64_t, int64_t> M(16);
  for (int64_t I = 0; I < 64; ++I)
    M.put(I, I);
  // Remove from the middle of chains.
  for (int64_t I = 0; I < 64; I += 2)
    EXPECT_TRUE(M.remove(I));
  for (int64_t I = 0; I < 64; ++I)
    EXPECT_EQ(M.contains(I), I % 2 == 1);
  EXPECT_EQ(M.size(), 32u);
}

TEST(JavaHashMap, ForEachVisitsEverything) {
  JavaHashMap<int64_t, int64_t> M;
  for (int64_t I = 0; I < 100; ++I)
    M.put(I, I + 1000);
  int64_t Sum = 0, Visits = 0;
  M.forEach([&](int64_t K, int64_t V) {
    Sum += V - K;
    ++Visits;
  });
  EXPECT_EQ(Visits, 100);
  EXPECT_EQ(Sum, 100 * 1000);
}

TEST(JavaHashMap, RandomizedAgainstReferenceModel) {
  JavaHashMap<int64_t, int64_t> M;
  std::unordered_map<int64_t, int64_t> Ref;
  Xoshiro256StarStar Rng(2024);
  for (int Op = 0; Op < 50000; ++Op) {
    int64_t Key = static_cast<int64_t>(Rng.nextBounded(512));
    switch (Rng.nextBounded(3)) {
    case 0: {
      int64_t Val = static_cast<int64_t>(Rng.next());
      bool Inserted = M.put(Key, Val);
      bool RefInserted = Ref.insert_or_assign(Key, Val).second;
      ASSERT_EQ(Inserted, RefInserted);
      break;
    }
    case 1: {
      ASSERT_EQ(M.remove(Key), Ref.erase(Key) == 1);
      break;
    }
    default: {
      auto V = M.get(Key);
      auto It = Ref.find(Key);
      ASSERT_EQ(V.has_value(), It != Ref.end());
      if (V.has_value()) {
        ASSERT_EQ(*V, It->second);
      }
    }
    }
    ASSERT_EQ(M.size(), Ref.size());
  }
}

TEST(JavaHashMap, ReusesNodesThroughPool) {
  JavaHashMap<int64_t, int64_t> M;
  for (int Round = 0; Round < 50; ++Round) {
    for (int64_t I = 0; I < 100; ++I)
      M.put(I, I);
    for (int64_t I = 0; I < 100; ++I)
      M.remove(I);
  }
  EXPECT_EQ(M.size(), 0u);
}

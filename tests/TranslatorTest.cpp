//===- tests/TranslatorTest.cpp - Load-time translation tests -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Translator.h"

#include "jit/Disassembler.h"
#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace solero;
using namespace solero::jit;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

bool containsOp(const TranslatedMethod &T, TOp Op) {
  return std::any_of(T.Code.begin(), T.Code.end(),
                     [&](const TInst &I) { return I.op() == Op; });
}

/// acc = 0; while (acc < Bound) acc += 3; return acc + obj.F2
/// — one of each fusion pattern plus a tagged back edge.
Module buildHotModule() {
  MethodBuilder B("hot", 2, 3);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.constant(0).store(2);
  B.bind(Loop);
  B.load(2).load(1).cmpLt().jumpIfZero(Done); // CmpLt+JumpIfZero
  B.load(2).constant(3).add().store(2);       // Const+Add
  B.jump(Loop);                               // back edge
  B.bind(Done);
  B.load(0).getField(2);                      // Load+GetField
  B.load(2).add().ret();
  Module M;
  M.addMethod(B.take());
  return M;
}

} // namespace

TEST(Translator, FusesHotPairsAndTagsBackEdges) {
  Module M = buildHotModule();
  TranslatedModule TM = translateModule(M, classifyModule(M, nullptr));
  const TranslatedMethod &T = TM.Methods[0];

  EXPECT_TRUE(containsOp(T, TOp::ConstAdd));
  EXPECT_TRUE(containsOp(T, TOp::CmpLtJumpIfZero));
  EXPECT_TRUE(containsOp(T, TOp::LoadGetField));
  // The fused compare-and-branch replaced its unfused form (the trailing
  // plain add after load is not a pattern and stays).
  EXPECT_FALSE(containsOp(T, TOp::CmpLt));

  // Exactly one back edge: the loop-closing Jump.
  int BackEdges = 0;
  for (const TInst &I : T.Code)
    if (I.op() == TOp::Jump && I.backEdge())
      ++BackEdges;
  EXPECT_EQ(BackEdges, 1);

  // Branch targets are stream offsets, not original pcs: every branch
  // lands inside the translated stream.
  for (const TInst &I : T.Code)
    if (I.op() == TOp::Jump || I.op() == TOp::CmpLtJumpIfZero) {
      EXPECT_LT(static_cast<std::size_t>(I.A), T.Code.size());
    }
}

TEST(Translator, FusedOpcodesRoundTripThroughDisassembler) {
  Module M = buildHotModule();
  TranslatedModule TM = translateModule(M, classifyModule(M, nullptr));
  std::string Text = disassembleTranslated(M, TM, 0);

  EXPECT_NE(Text.find("const+add"), std::string::npos);
  EXPECT_NE(Text.find("cmplt+jz"), std::string::npos);
  EXPECT_NE(Text.find("load+getfield"), std::string::npos);
  EXPECT_NE(Text.find("(back edge)"), std::string::npos);
  // Every line carries the original pc it was translated from, and the
  // per-instruction map is total.
  EXPECT_NE(Text.find("; pc "), std::string::npos);
  EXPECT_EQ(TM.Methods[0].PcMap.size(), TM.Methods[0].Code.size());

  // The disassembly names round-trip through tOpName for every opcode the
  // stream uses (no "(null)" or garbage from the fused tail).
  for (const TInst &I : TM.Methods[0].Code)
    EXPECT_NE(Text.find(tOpName(I.op())), std::string::npos);
}

TEST(Translator, FusionSkipsBranchTargets) {
  // The Add at label L is a branch target: the Const directly before it
  // must NOT be swallowed into a ConstAdd, or the jump would skip the
  // push half of the pair.
  MethodBuilder B("nofuse", 1, 2);
  auto L = B.newLabel();
  B.load(0).constant(5).load(0).jumpIfZero(L);
  B.pop().constant(7);
  B.bind(L);
  B.add().ret();
  Module M;
  M.addMethod(B.take());
  TranslatedModule TM = translateModule(M, classifyModule(M, nullptr));

  EXPECT_FALSE(containsOp(TM.Methods[0], TOp::ConstAdd));
  EXPECT_TRUE(containsOp(TM.Methods[0], TOp::Add));

  // Both paths execute correctly under both engines.
  for (DispatchMode Mode : {DispatchMode::Threaded, DispatchMode::Reference}) {
    Interpreter::Options Opts;
    Opts.Mode = Mode;
    Module M2;
    {
      MethodBuilder B2("nofuse", 1, 2);
      auto L2 = B2.newLabel();
      B2.load(0).constant(5).load(0).jumpIfZero(L2);
      B2.pop().constant(7);
      B2.bind(L2);
      B2.add().ret();
      M2.addMethod(B2.take());
    }
    Interpreter I(ctx(), std::move(M2), Opts);
    EXPECT_EQ(I.invoke("nofuse", {Value::ofInt(0)}).asInt(), 5);
    EXPECT_EQ(I.invoke("nofuse", {Value::ofInt(2)}).asInt(), 9);
  }
}

TEST(Translator, SyncEnterCarriesClassificationInlineCache) {
  MethodBuilder B("get", 1, 2);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  ClassifiedModule Classes = classifyModule(M, nullptr);
  ASSERT_EQ(Classes.regions(0)[0].Kind, RegionKind::ReadOnly);
  TranslatedModule TM = translateModule(M, Classes);

  const TranslatedMethod &T = TM.Methods[0];
  auto It = std::find_if(T.Code.begin(), T.Code.end(), [](const TInst &I) {
    return I.op() == TOp::SyncEnter;
  });
  ASSERT_NE(It, T.Code.end());
  EXPECT_EQ(static_cast<RegionKind>(It->B), RegionKind::ReadOnly);
  // The continuation points past the translated SyncExit.
  std::size_t ExitIdx = 0;
  for (std::size_t Ti = 0; Ti < T.Code.size(); ++Ti)
    if (T.Code[Ti].op() == TOp::SyncExit)
      ExitIdx = Ti;
  EXPECT_EQ(static_cast<std::size_t>(It->A), ExitIdx + 1);
}

TEST(Translator, ProfileTranslationIsExactAndUnfused) {
  Module M = buildHotModule();
  TranslatorOptions TO;
  TO.Profile = true;
  TranslatedModule TM = translateModule(M, classifyModule(M, nullptr), TO);
  const TranslatedMethod &T = TM.Methods[0];

  // Profiling disables fusion so counts stay per-original-pc exact.
  EXPECT_FALSE(containsOp(T, TOp::ConstAdd));
  EXPECT_FALSE(containsOp(T, TOp::CmpLtJumpIfZero));
  // One ProfileCount per original instruction (no SyncExit here).
  std::size_t Counts = 0;
  for (const TInst &I : T.Code)
    if (I.op() == TOp::ProfileCount)
      ++Counts;
  EXPECT_EQ(Counts, M.method(0).Code.size());
}

TEST(Translator, FrameFactsMatchVerifier) {
  Module M = buildHotModule();
  TranslatedModule TM = translateModule(M, classifyModule(M, nullptr));
  VerifiedMethod V = verifyMethod(M, 0);
  ASSERT_TRUE(V.Ok);
  EXPECT_EQ(TM.Methods[0].MaxStack, V.MaxStack);
  EXPECT_EQ(TM.Methods[0].FrameSlots, M.method(0).NumLocals + V.MaxStack);
  EXPECT_EQ(TM.MaxFrameSlots, TM.Methods[0].FrameSlots);
}

//===- tests/DispatchDifferentialTest.cpp - Engine equivalence ------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Differential property test: randomized CSIR programs executed under the
// threaded (pre-decoded) engine and the reference (switch) oracle must
// produce identical results, guest errors, heap/static effects, elision
// statistics, and — when profiling — identical per-pc counts, across every
// lock policy. Programs are generated verifier-clean by construction from
// a seeded SplitMix64, covering arithmetic, bounded loops, calls, field
// and static traffic, guest errors, and all three region kinds.
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"

#include "jit/MethodBuilder.h"
#include "runtime/ThreadRegistry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace solero;
using namespace solero::jit;

namespace {

/// Event bus off: a mid-run poll-flag tick would abort a speculation in
/// one run but not its twin, making the statistic comparison flaky.
RuntimeContext &quietCtx() {
  static RuntimeContext *Ctx = [] {
    RuntimeConfig C;
    C.StartEventBus = false;
    return new RuntimeContext(C);
  }();
  return *Ctx;
}

constexpr int NumScratch = 6; // main's scratch locals: slots 2..7
// Dedicated ref-typed local for the in-region result holder (always
// stored before read, so it stays dead at region entry).
constexpr int32_t HolderSlot = 2 + NumScratch;

/// Pure leaf callee: arithmetic over its two int params only.
Method buildLeaf(SplitMix64 &R) {
  MethodBuilder B("leaf", 2, 2);
  B.load(0);
  const int Steps = 1 + static_cast<int>(R.next() % 4);
  for (int S = 0; S < Steps; ++S) {
    switch (R.next() % 4) {
    case 0:
      B.load(1).add();
      break;
    case 1:
      B.constant(static_cast<int64_t>(R.next() % 9) + 1).add();
      break;
    case 2:
      B.load(1).sub();
      break;
    default:
      B.constant(static_cast<int64_t>(R.next() % 7) + 1).div();
      break;
    }
  }
  B.ret();
  return B.take();
}

/// Read-mostly helper (annotation-driven): conditionally bumps F0 under
/// the region, returns the field — exercises the Figure 17 upgrade path.
Method buildReadMostly() {
  MethodBuilder B("rm", 2, 2);
  B.annotateReadMostly();
  auto Skip = B.newLabel();
  B.load(0).syncEnter();
  B.load(1).jumpIfZero(Skip);
  B.load(0).load(0).getField(0).constant(1).add().putField(0);
  B.bind(Skip);
  B.syncExit();
  B.load(0).getField(0).ret();
  return B.take();
}

/// Main method: slot 0 = int arg, slot 1 = object, slots 2..7 scratch,
/// slot 8 the result-holder ref. Every statement is stack-neutral;
/// scratch writes inside regions are dead at region entry, so regions
/// keep their natural classification.
Method buildMain(SplitMix64 &R) {
  MethodBuilder B("main", 2, 3 + NumScratch);
  auto Scratch = [&] { return static_cast<int32_t>(2 + R.next() % NumScratch); };
  auto Field = [&] { return static_cast<int32_t>(R.next() % 4); };

  const int Stmts = 6 + static_cast<int>(R.next() % 6);
  for (int S = 0; S < Stmts; ++S) {
    switch (R.next() % 12) {
    case 0: // scratch arithmetic
      B.load(Scratch()).constant(static_cast<int64_t>(R.next() % 50)).add();
      B.store(Scratch());
      break;
    case 1: // field write
      B.load(1).constant(static_cast<int64_t>(R.next() % 100)).putField(Field());
      break;
    case 2: // field read (load+getfield fusion fodder)
      B.load(1).getField(Field()).store(Scratch());
      break;
    case 3: // static read-modify-write
    {
      int32_t Cell = static_cast<int32_t>(R.next() % 4);
      B.getStatic(Cell).constant(static_cast<int64_t>(R.next() % 10)).add();
      B.putStatic(Cell);
      break;
    }
    case 4: // bounded loop (back edges, const+add fusion)
    {
      auto Loop = B.newLabel(), Done = B.newLabel();
      // Distinct slots: if the accumulator aliased the counter the loop
      // would never count down to zero.
      int32_t Ctr = Scratch();
      int32_t Acc = 2 + (Ctr - 2 + 1) % NumScratch;
      B.constant(1 + static_cast<int64_t>(R.next() % 8)).store(Ctr);
      B.bind(Loop);
      B.load(Ctr).jumpIfZero(Done);
      B.load(Acc).constant(static_cast<int64_t>(R.next() % 5)).add().store(Acc);
      B.load(Ctr).constant(-1).add().store(Ctr);
      B.jump(Loop);
      B.bind(Done);
      break;
    }
    case 5: // if (scratch < c) field write   (cmplt+jz fusion)
    {
      auto Skip = B.newLabel();
      B.load(Scratch()).constant(static_cast<int64_t>(R.next() % 40)).cmpLt();
      B.jumpIfZero(Skip);
      B.load(1).constant(static_cast<int64_t>(R.next() % 100)).putField(Field());
      B.bind(Skip);
      break;
    }
    case 6: // call the pure leaf
      B.load(0).constant(static_cast<int64_t>(R.next() % 20)).invoke(1);
      B.store(Scratch());
      break;
    case 7: // maybe-throwing division by the int arg
      B.constant(100 + static_cast<int64_t>(R.next() % 50)).load(0).div();
      B.store(Scratch());
      break;
    case 8: // read-only region: sum fields (and maybe a pure call)
    {
      B.load(1).syncEnter();
      B.constant(0);
      const int Reads = 1 + static_cast<int>(R.next() % 3);
      for (int Rd = 0; Rd < Reads; ++Rd)
        B.load(1).getField(Field()).add();
      if (R.next() % 2 == 0)
        B.load(0).constant(static_cast<int64_t>(R.next() % 20)).invoke(1).add();
      B.store(Scratch());
      B.syncExit();
      break;
    }
    case 9: // writing region: field read-modify-write under the lock
      B.load(1).syncEnter();
      B.load(1).load(1).getField(Field())
          .constant(static_cast<int64_t>(R.next() % 10)).add().putField(Field());
      B.syncExit();
      break;
    case 10: // snapshot region: allocate a holder, fill it, read it back.
             // The escape analysis proves the holder writes benign, so the
             // region elides — both engines must agree on the counters.
    {
      B.load(1).syncEnter();
      B.newObject().store(HolderSlot);
      B.load(HolderSlot).load(1).getField(Field()).putField(0);
      B.load(HolderSlot).load(1).getField(Field())
          .constant(static_cast<int64_t>(R.next() % 25)).add().putField(1);
      B.load(HolderSlot).getField(0)
          .load(HolderSlot).getField(1).add().store(Scratch());
      B.syncExit();
      break;
    }
    default: // read-mostly helper call (flag = int arg)
      B.load(1).load(0).invoke(2).store(Scratch());
      break;
    }
  }
  // Return a digest of the scratch state so every statement's value flow
  // is observable.
  B.load(2);
  for (int32_t Slot = 3; Slot < 2 + NumScratch; ++Slot)
    B.load(Slot).add();
  B.ret();
  return B.take();
}

Module buildRandomModule(uint64_t Seed) {
  SplitMix64 R(Seed);
  Module M;
  M.NumStatics = 4;
  M.addMethod(buildMain(R)); // id 0
  M.addMethod(buildLeaf(R)); // id 1
  M.addMethod(buildReadMostly()); // id 2
  return M;
}

struct RunResult {
  std::vector<int64_t> Results;
  std::vector<int32_t> Errors; // 0 = ok, else GuestError code
  std::vector<int64_t> Fields;
  std::vector<int64_t> Statics;
  uint64_t ReadOnlyEntries = 0;
  uint64_t WriteEntries = 0;
  uint64_t ElisionAttempts = 0;
  uint64_t ElisionSuccesses = 0;
  uint64_t ElisionFailures = 0;
  uint64_t Fallbacks = 0;
  uint64_t AtomicRmws = 0;
  std::vector<std::vector<uint64_t>> ProfileCounts;
};

RunResult run(uint64_t Seed, Interpreter::Options Opts) {
  Interpreter I(quietCtx(), buildRandomModule(Seed), Opts);
  GuestObject *Obj = I.allocateObject();
  SplitMix64 R(Seed ^ 0x9e3779b97f4a7c15ULL);
  for (uint32_t F = 0; F < ObjectIntFields; ++F)
    Obj->F[F].write(static_cast<int64_t>(R.next() % 1000));
  for (uint32_t S = 0; S < 4; ++S)
    I.setStaticCell(S, static_cast<int64_t>(R.next() % 1000));

  ThreadRegistry::current().PollFlag.store(0);
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  RunResult Out;
  for (int N = 0; N < 12; ++N) {
    // Every 4th arg is 0: triggers the division guest error and keeps the
    // read-mostly helper on its pure-read path.
    int64_t X = (N % 4 == 0) ? 0 : static_cast<int64_t>(R.next() % 7) + 1;
    try {
      Out.Results.push_back(
          I.invoke("main", {Value::ofInt(X), Value::ofRef(Obj)}).asInt());
      Out.Errors.push_back(0);
    } catch (GuestError &E) {
      Out.Results.push_back(0);
      Out.Errors.push_back(E.Code);
    }
  }
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  for (uint32_t F = 0; F < ObjectIntFields; ++F)
    Out.Fields.push_back(Obj->F[F].read());
  for (uint32_t S = 0; S < 4; ++S)
    Out.Statics.push_back(I.staticCell(S));
  Out.ReadOnlyEntries = After.ReadOnlyEntries - Before.ReadOnlyEntries;
  Out.WriteEntries = After.WriteEntries - Before.WriteEntries;
  Out.ElisionAttempts = After.ElisionAttempts - Before.ElisionAttempts;
  Out.ElisionSuccesses = After.ElisionSuccesses - Before.ElisionSuccesses;
  Out.ElisionFailures = After.ElisionFailures - Before.ElisionFailures;
  Out.Fallbacks = After.Fallbacks - Before.Fallbacks;
  Out.AtomicRmws = After.AtomicRmws - Before.AtomicRmws;
  if (Opts.CollectProfile)
    Out.ProfileCounts = I.profile().Counts;
  return Out;
}

void expectSame(const RunResult &A, const RunResult &B, uint64_t Seed) {
  EXPECT_EQ(A.Results, B.Results) << "seed " << Seed;
  EXPECT_EQ(A.Errors, B.Errors) << "seed " << Seed;
  EXPECT_EQ(A.Fields, B.Fields) << "seed " << Seed;
  EXPECT_EQ(A.Statics, B.Statics) << "seed " << Seed;
  EXPECT_EQ(A.ReadOnlyEntries, B.ReadOnlyEntries) << "seed " << Seed;
  EXPECT_EQ(A.WriteEntries, B.WriteEntries) << "seed " << Seed;
  EXPECT_EQ(A.ElisionAttempts, B.ElisionAttempts) << "seed " << Seed;
  EXPECT_EQ(A.ElisionSuccesses, B.ElisionSuccesses) << "seed " << Seed;
  EXPECT_EQ(A.ElisionFailures, B.ElisionFailures) << "seed " << Seed;
  EXPECT_EQ(A.Fallbacks, B.Fallbacks) << "seed " << Seed;
  EXPECT_EQ(A.AtomicRmws, B.AtomicRmws) << "seed " << Seed;
  EXPECT_EQ(A.ProfileCounts, B.ProfileCounts) << "seed " << Seed;
}

} // namespace

TEST(DispatchDifferential, ThreadedMatchesReferenceUnderSolero) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Interpreter::Options Threaded;
    Threaded.Mode = DispatchMode::Threaded;
    Interpreter::Options Reference;
    Reference.Mode = DispatchMode::Reference;
    expectSame(run(Seed, Threaded), run(Seed, Reference), Seed);
  }
}

TEST(DispatchDifferential, ThreadedMatchesReferenceUnderConventionalLocks) {
  for (uint64_t Seed = 100; Seed <= 115; ++Seed) {
    Interpreter::Options Threaded;
    Threaded.Mode = DispatchMode::Threaded;
    Threaded.UseConventionalLocks = true;
    Interpreter::Options Reference;
    Reference.Mode = DispatchMode::Reference;
    Reference.UseConventionalLocks = true;
    expectSame(run(Seed, Threaded), run(Seed, Reference), Seed);
  }
}

TEST(DispatchDifferential, FusionIsSemanticallyInvisible) {
  for (uint64_t Seed = 200; Seed <= 212; ++Seed) {
    Interpreter::Options Fused;
    Fused.Mode = DispatchMode::Threaded;
    Interpreter::Options Unfused;
    Unfused.Mode = DispatchMode::Threaded;
    Unfused.FuseSuperinstructions = false;
    expectSame(run(Seed, Fused), run(Seed, Unfused), Seed);
  }
}

TEST(DispatchDifferential, BakedProfileCountsMatchReference) {
  // The threaded engine's translation-time ProfileCount instrumentation
  // must reproduce the reference engine's per-original-pc counts exactly.
  for (uint64_t Seed = 300; Seed <= 308; ++Seed) {
    Interpreter::Options Threaded;
    Threaded.Mode = DispatchMode::Threaded;
    Threaded.CollectProfile = true;
    Interpreter::Options Reference;
    Reference.Mode = DispatchMode::Reference;
    Reference.CollectProfile = true;
    expectSame(run(Seed, Threaded), run(Seed, Reference), Seed);
  }
}

TEST(DispatchDifferential, StepBudgetAgreesAcrossEngines) {
  // Budget counts back edges + invokes identically in both engines: a
  // tight budget must trip (or not) at the same program for both.
  MethodBuilder B("spin", 1, 1);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.bind(Loop);
  B.load(0).jumpIfZero(Done);
  B.load(0).constant(-1).add().store(0);
  B.jump(Loop);
  B.bind(Done);
  B.constant(0).ret();
  Module M;
  M.addMethod(B.take());
  for (DispatchMode Mode : {DispatchMode::Threaded, DispatchMode::Reference}) {
    Module M2 = M;
    Interpreter::Options Opts;
    Opts.Mode = Mode;
    Opts.MaxSteps = 1u << 20; // plenty for 1000 iterations of back edges
    Interpreter I(quietCtx(), std::move(M2), Opts);
    EXPECT_EQ(I.invoke("spin", {Value::ofInt(1000)}).asInt(), 0);
  }
}

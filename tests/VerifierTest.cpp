//===- tests/VerifierTest.cpp - CSIR verifier tests -----------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Verifier.h"

#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

/// Builds a single-method module around \p B.
Module moduleOf(Method M, uint32_t NumStatics = 4) {
  Module Mod;
  Mod.NumStatics = NumStatics;
  Mod.addMethod(std::move(M));
  return Mod;
}

} // namespace

TEST(Verifier, AcceptsMinimalMethod) {
  MethodBuilder B("f", 0, 0);
  B.constant(42).ret();
  Module M = moduleOf(B.take());
  VerifiedMethod V = verifyMethod(M, 0);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_EQ(V.MaxStack, 1u);
  EXPECT_TRUE(V.Regions.empty());
}

TEST(Verifier, RejectsEmptyBody) {
  Method M;
  M.Name = "empty";
  VerifiedMethod V = verifyMethod(moduleOf(std::move(M)), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, RejectsStackUnderflow) {
  MethodBuilder B("f", 0, 0);
  B.add().ret(); // add with empty stack
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("underflow"), std::string::npos);
}

TEST(Verifier, RejectsFallingOffTheEnd) {
  MethodBuilder B("f", 0, 0);
  B.constant(1).pop(); // no return
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, RejectsOutOfRangeLocal) {
  MethodBuilder B("f", 0, 1);
  B.load(3).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("local"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeStatic) {
  MethodBuilder B("f", 0, 0);
  B.getStatic(99).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, RejectsOutOfRangeField) {
  MethodBuilder B("f", 1, 1);
  B.load(0).getField(static_cast<int32_t>(ObjectIntFields)).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, DiscoversSyncRegion) {
  // Synchronized blocks are statements: the stack must balance across the
  // region, so values flow out through locals.
  MethodBuilder B("f", 1, 2);
  B.load(0).syncEnter();    // pc 0,1
  B.constant(7).store(1);   // pc 2,3
  B.syncExit();             // pc 4
  B.load(1).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  ASSERT_TRUE(V.Ok) << V.Error;
  ASSERT_EQ(V.Regions.size(), 1u);
  EXPECT_EQ(V.Regions[0].EnterPc, 1u);
  EXPECT_EQ(V.Regions[0].ExitPc, 4u);
}

TEST(Verifier, RegionWithOnlyReturnExit) {
  // `synchronized (o) { return o.F0; }` — the SyncExit is unreachable but
  // the lexical pairing still defines the region.
  MethodBuilder B("early", 1, 1);
  B.load(0).syncEnter();
  B.load(0).getField(0).ret();
  B.syncExit();
  B.constant(-1).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  ASSERT_TRUE(V.Ok) << V.Error;
  ASSERT_EQ(V.Regions.size(), 1u);
}

TEST(Verifier, DiscoversNestedRegions) {
  MethodBuilder B("f", 2, 2);
  B.load(0).syncEnter();   // outer at pc 1
  B.load(1).syncEnter();   // inner at pc 3
  B.constant(1).pop();
  B.syncExit();            // pc 6
  B.syncExit();            // pc 7
  B.constant(0).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  ASSERT_TRUE(V.Ok) << V.Error;
  ASSERT_EQ(V.Regions.size(), 2u);
  EXPECT_EQ(V.Regions[0].EnterPc, 1u);
  EXPECT_EQ(V.Regions[0].ExitPc, 7u);
  EXPECT_EQ(V.Regions[1].EnterPc, 3u);
  EXPECT_EQ(V.Regions[1].ExitPc, 6u);
}

TEST(Verifier, RejectsUnbalancedRegionStack) {
  MethodBuilder B("f", 1, 1);
  B.load(0).syncEnter();
  B.constant(7); // extra value left on the stack
  B.syncExit();
  B.ret();
  // Stack height at SyncExit != height at SyncEnter... actually the value
  // is consumed by Return after the exit, but the *region* is unbalanced.
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("balanced"), std::string::npos);
}

TEST(Verifier, RejectsSyncExitWithoutEnter) {
  MethodBuilder B("f", 0, 0);
  B.syncExit().constant(0).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, RejectsBranchIntoRegion) {
  // jump over the SyncEnter into the middle of the region.
  MethodBuilder B("f", 1, 1);
  auto Inside = B.newLabel();
  B.jump(Inside);        // pc 0
  B.load(0).syncEnter(); // pc 1,2
  B.bind(Inside);
  B.constant(1).pop();   // pc 3,4
  B.syncExit();          // pc 5
  B.constant(0).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, AcceptsLoopInsideRegion) {
  MethodBuilder B("count", 1, 2);
  auto Loop = B.newLabel();
  B.constant(10).store(1);
  B.load(0).syncEnter();
  B.bind(Loop);
  B.load(1).constant(1).sub().store(1);
  B.load(1).jumpIfNonZero(Loop);
  B.syncExit();
  B.load(1).ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_EQ(V.Regions.size(), 1u);
}

TEST(Verifier, RejectsInconsistentJoinHeights) {
  MethodBuilder B("f", 0, 0);
  auto Join = B.newLabel(), Other = B.newLabel();
  B.constant(1).jumpIfZero(Other); // height 0 afterwards
  B.constant(5);                   // height 1
  B.jump(Join);
  B.bind(Other);
  B.constant(1).constant(2); // height 2
  B.bind(Join);
  B.ret();
  VerifiedMethod V = verifyMethod(moduleOf(B.take()), 0);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, InvokeChecksParameterCount) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Callee("callee", 2, 2);
    Callee.load(0).load(1).add().ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("caller", 0, 0);
    Caller.constant(1).invoke(0).ret(); // only one argument pushed
    M.addMethod(Caller.take());
  }
  VerifiedMethod V = verifyMethod(M, 1);
  EXPECT_FALSE(V.Ok);
}

TEST(Verifier, ModuleVerifyReportsFirstFailure) {
  Module M;
  M.NumStatics = 0;
  MethodBuilder Good("good", 0, 0);
  Good.constant(0).ret();
  M.addMethod(Good.take());
  MethodBuilder Bad("bad", 0, 0);
  Bad.add().ret();
  M.addMethod(Bad.take());
  EXPECT_FALSE(verifyModule(M).Ok);
}

//===- tests/MemoryTest.cpp - Pool and epoch reclamation tests ------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mm/EpochReclaimer.h"
#include "mm/TypeStablePool.h"

#include "runtime/SharedField.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace solero;

namespace {

struct Node {
  SharedField<int64_t> Key;
  SharedField<Node *> Next;
};

} // namespace

TEST(TypeStablePool, RecyclesSlots) {
  TypeStablePool<Node, 8> Pool;
  Node *A = Pool.allocate();
  EXPECT_EQ(Pool.liveCount(), 1u);
  Pool.deallocate(A);
  EXPECT_EQ(Pool.liveCount(), 0u);
  Node *B = Pool.allocate();
  EXPECT_EQ(B, A); // LIFO recycling of the same typed slot
  Pool.deallocate(B);
}

TEST(TypeStablePool, GrowsByWholeSlabs) {
  TypeStablePool<Node, 8> Pool;
  std::vector<Node *> Ns;
  for (int I = 0; I < 20; ++I)
    Ns.push_back(Pool.allocate());
  EXPECT_EQ(Pool.liveCount(), 20u);
  EXPECT_EQ(Pool.capacity(), 24u); // three slabs of eight
  std::set<Node *> Unique(Ns.begin(), Ns.end());
  EXPECT_EQ(Unique.size(), 20u);
  for (Node *N : Ns)
    Pool.deallocate(N);
  EXPECT_EQ(Pool.liveCount(), 0u);
}

TEST(TypeStablePool, StaleSlotRemainsReadable) {
  // The type-stable property: a pointer kept across free/realloc still
  // points at a well-formed Node whose fields can be read (values are
  // garbage, which the SOLERO validation layer rejects).
  TypeStablePool<Node, 4> Pool;
  Node *A = Pool.allocate();
  A->Key.write(111);
  Node *Stale = A;
  Pool.deallocate(A);
  Node *B = Pool.allocate();
  B->Key.write(222);
  // Reading through the stale pointer is safe and sees the new value.
  EXPECT_EQ(Stale->Key.read(), 222);
  Pool.deallocate(B);
}

TEST(TypeStablePool, ConcurrentAllocateFree) {
  TypeStablePool<Node, 64> Pool;
  constexpr int Threads = 4, Iters = 2000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      std::vector<Node *> Mine;
      for (int I = 0; I < Iters; ++I) {
        Mine.push_back(Pool.allocate());
        if (Mine.size() > 8) {
          Pool.deallocate(Mine.back());
          Mine.pop_back();
          Pool.deallocate(Mine.front());
          Mine.erase(Mine.begin());
        }
      }
      for (Node *N : Mine)
        Pool.deallocate(N);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Pool.liveCount(), 0u);
}

namespace {

struct CountingTarget {
  static void deleter(void *Obj, void *Arg) {
    ++*static_cast<int *>(Arg);
    (void)Obj;
  }
};

} // namespace

TEST(EpochReclaimer, RetiredObjectsFreeEventually) {
  EpochReclaimer R;
  int Freed = 0;
  int Dummy;
  R.retire(&Dummy, CountingTarget::deleter, &Freed);
  EXPECT_EQ(R.pendingCount(), 1u);
  // No pinned threads: a few collects cycle the buckets and free it.
  R.collect();
  R.collect();
  R.collect();
  EXPECT_EQ(Freed, 1);
  EXPECT_EQ(R.pendingCount(), 0u);
}

TEST(EpochReclaimer, PinnedReaderBlocksReclamation) {
  EpochReclaimer R;
  int Freed = 0;
  int Dummy;
  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    EpochReclaimer::Pin P(R);
    Stage.store(1);
    while (Stage.load() != 2)
      std::this_thread::yield();
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  R.retire(&Dummy, CountingTarget::deleter, &Freed);
  // The reader pinned an older epoch: nothing can be freed.
  for (int I = 0; I < 5; ++I)
    R.collect();
  EXPECT_EQ(Freed, 0);
  Stage.store(2);
  Reader.join();
  for (int I = 0; I < 5; ++I)
    R.collect();
  EXPECT_EQ(Freed, 1);
}

TEST(EpochReclaimer, PinIsReentrant) {
  EpochReclaimer R;
  {
    EpochReclaimer::Pin P1(R);
    EpochReclaimer::Pin P2(R);
  }
  // Fully unpinned: collection advances freely.
  int Freed = 0;
  int Dummy;
  R.retire(&Dummy, CountingTarget::deleter, &Freed);
  for (int I = 0; I < 4; ++I)
    R.collect();
  EXPECT_EQ(Freed, 1);
}

TEST(EpochReclaimer, ManyRetirementsAllFree) {
  EpochReclaimer R;
  int Freed = 0;
  std::vector<int> Objects(500);
  for (int &O : Objects)
    R.retire(&O, CountingTarget::deleter, &Freed);
  for (int I = 0; I < 6; ++I)
    R.collect();
  EXPECT_EQ(Freed, 500);
}

TEST(EpochReclaimer, DrainAllFreesEverything) {
  int Freed = 0;
  std::vector<int> Objects(50);
  {
    EpochReclaimer R;
    for (int &O : Objects)
      R.retire(&O, CountingTarget::deleter, &Freed);
    // Destructor drains.
  }
  EXPECT_EQ(Freed, 50);
}

TEST(EpochReclaimer, PoolIntegration) {
  // The intended composition: writers retire nodes into the reclaimer,
  // whose deleter recycles them into the type-stable pool.
  TypeStablePool<Node, 16> Pool;
  EpochReclaimer R;
  auto Recycle = +[](void *Obj, void *Arg) {
    static_cast<TypeStablePool<Node, 16> *>(Arg)->deallocate(
        static_cast<Node *>(Obj));
  };
  Node *N = Pool.allocate();
  R.retire(N, Recycle, &Pool);
  EXPECT_EQ(Pool.liveCount(), 1u); // still live until a grace period passes
  for (int I = 0; I < 4; ++I)
    R.collect();
  EXPECT_EQ(Pool.liveCount(), 0u);
}

//===- tests/WatchdogTest.cpp - Stuck-speculation watchdog tests ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Deterministic coverage of the resilience watchdog (DESIGN.md §17):
/// every pathology is injected through the watchdog's virtual-clock
/// pollOnce() entry point (no wall-clock races), and every test closes by
/// driving real traffic through the degraded locks — the contract is
/// forced degradation, never a crash, with recovery left to the
/// protocols' own Reprobe/inhibit machinery.
///
//===----------------------------------------------------------------------===//

#include "resilience/Watchdog.h"

#include "core/SoleroLock.h"
#include "locks/BravoRwLock.h"

#include <gtest/gtest.h>

#include <string>

using namespace solero;
using namespace solero::resilience;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

/// Tight thresholds so a handful of injected events trips each detector.
WatchdogConfig testConfig() {
  WatchdogConfig C;
  C.StallBoundNs = 1'000'000; // virtual-clock tests pick their own "now"
  C.StormFailures = 100;
  C.StormRatio = 0.8;
  C.RevocationsPerPoll = 8;
  C.BiasInhibitNs = 10'000'000'000; // 10s: re-arming inside a test = bug
  return C;
}

SoleroConfig adaptiveConfig() {
  SoleroConfig C;
  C.Adaptive.Enabled = true;
  return C;
}

/// Small windows so the post-recovery Reprobe path completes in-loop.
SoleroConfig tinyAdaptiveConfig() {
  SoleroConfig C;
  C.Adaptive.Enabled = true;
  C.Adaptive.WindowAttempts = 8;
  C.Adaptive.ElideMaxAttempts = 1;
  C.Adaptive.ReprobeWindow = 4;
  C.Adaptive.DisabledSkipMin = 4;
  C.Adaptive.DisabledSkipMax = 16;
  return C;
}

} // namespace

TEST(Watchdog, StalledSectionForcesDegradation) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx, adaptiveConfig());
  BravoRwLock B(Ctx);
  B.readLock();
  B.readUnlock(); // arm the bias so there is something to revoke
  ASSERT_TRUE(B.readBiased());

  SpeculationWatchdog Wd(testConfig());
  Wd.watchController(&L.controller());
  Wd.watchBravo(&B);

  // An op in flight since t=1000, polled one tick past the stall bound.
  Wd.opBegin(7, 1000);
  Wd.pollOnce(1000 + testConfig().StallBoundNs + 1);

  SpeculationWatchdog::Stats S = Wd.stats();
  EXPECT_EQ(S.StallsDetected, 1u);
  EXPECT_EQ(S.ForcedDisables, 1u);
  EXPECT_EQ(S.ForcedRevocations, 1u);
  EXPECT_EQ(L.controller().state(), ElisionState::Disabled);
  EXPECT_FALSE(B.readBiased());

  std::vector<ResilienceDiagnostic> Diags = Wd.diagnostics();
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Kind, PathologyKind::StalledSection);
  EXPECT_EQ(Diags[0].Slot, 7);
  EXPECT_NE(Diags[0].render().find("StalledSection"), std::string::npos);
  EXPECT_NE(Diags[0].render().find("traffic continues"), std::string::npos);

  // The same stuck section across later polls is one pathology, not one
  // per poll; and a completed op is no pathology at all.
  Wd.pollOnce(1000 + 10 * testConfig().StallBoundNs);
  EXPECT_EQ(Wd.stats().StallsDetected, 1u);
  Wd.opEnd(7);
  Wd.pollOnce(1000 + 20 * testConfig().StallBoundNs);
  EXPECT_EQ(Wd.stats().StallsDetected, 1u);

  // Traffic continues, lock-safe, on the degraded paths: SOLERO reads
  // fall back to holding the flat lock, BRAVO reads take the underlying
  // reader path, and the next writer consumes the deferred drain.
  ObjectHeader H;
  EXPECT_EQ(L.synchronizedReadOnly(H, [](ReadGuard &) { return 41; }), 41);
  L.synchronizedWrite(H, [] {});
  B.writeLock();
  B.writeUnlock();
  B.readLock();
  B.readUnlock();
}

TEST(Watchdog, ElisionFailureStormForcesDisable) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx, adaptiveConfig());
  SpeculationWatchdog Wd(testConfig());
  Wd.watchController(&L.controller());

  Wd.pollOnce(1000); // first poll only establishes the counter baseline
  EXPECT_EQ(Wd.stats().FailureStorms, 0u);

  // Inject a storm: 190 failures out of 200 attempts in one poll window
  // (delta >= StormFailures at a ratio >= StormRatio).
  ThreadState &TS = ThreadRegistry::current();
  TS.Counters.ElisionAttempts += 200;
  TS.Counters.ElisionFailures += 190;
  Wd.pollOnce(2000);
  EXPECT_EQ(Wd.stats().FailureStorms, 1u);
  EXPECT_EQ(L.controller().state(), ElisionState::Disabled);
  ASSERT_EQ(Wd.diagnostics().size(), 1u);
  EXPECT_EQ(Wd.diagnostics()[0].Kind, PathologyKind::ElisionFailureStorm);
  EXPECT_EQ(Wd.diagnostics()[0].ObservedNs, 190u);

  // A quiet poll afterwards detects nothing new.
  Wd.pollOnce(3000);
  EXPECT_EQ(Wd.stats().FailureStorms, 1u);

  // A heavy but mostly-successful window is not a storm.
  TS.Counters.ElisionAttempts += 1000;
  TS.Counters.ElisionFailures += 100; // ratio 0.1 < 0.8
  Wd.pollOnce(4000);
  EXPECT_EQ(Wd.stats().FailureStorms, 1u);
}

TEST(Watchdog, BiasRevocationLivelockForcesInhibit) {
  RuntimeContext Ctx(quietConfig());
  BravoRwLock B(Ctx);
  SpeculationWatchdog Wd(testConfig());
  Wd.watchBravo(&B); // baselines the revocation counter at registration

  // Ping-pong: re-arm the bias (restore is the deterministic handle; the
  // organic 1/64-probe re-enable would race the test), then revoke it
  // with a writer. Nine rounds beats RevocationsPerPoll = 8.
  for (int I = 0; I < 9; ++I) {
    BravoSnapshot S;
    S.RBias = true;
    S.InhibitRemainingNs = 0;
    S.Revocations = B.revocations();
    ASSERT_TRUE(B.restore(S));
    B.writeLock(); // sees the bias -> full revocation
    B.writeUnlock();
  }
  // Biased *again* at poll time is what distinguishes livelock from a
  // one-off expensive revocation.
  BravoSnapshot S;
  S.RBias = true;
  S.InhibitRemainingNs = 0;
  S.Revocations = B.revocations();
  ASSERT_TRUE(B.restore(S));

  Wd.pollOnce(1000);
  EXPECT_EQ(Wd.stats().RevocationStorms, 1u);
  EXPECT_FALSE(B.readBiased());
  ASSERT_EQ(Wd.diagnostics().size(), 1u);
  EXPECT_EQ(Wd.diagnostics()[0].Kind,
            PathologyKind::BiasRevocationLivelock);

  // forceRevokeBias armed a 10s inhibit: repeated reads (which probe the
  // re-enable clock) must NOT re-arm the bias inside the test.
  for (int I = 0; I < 200; ++I) {
    B.readLock();
    B.readUnlock();
  }
  EXPECT_FALSE(B.readBiased());
  // And traffic continues on the unbiased path, writers included.
  B.writeLock();
  B.writeUnlock();
}

TEST(Watchdog, ForcedDisableRecoversThroughReprobe) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx, tinyAdaptiveConfig());
  ObjectHeader H;

  L.controller().forceDisable();
  ASSERT_EQ(L.controller().state(), ElisionState::Disabled);

  // Recovery is the controller's own machinery, not the watchdog's: the
  // full Disabled skip budget drains, Reprobe samples clean attempts, and
  // the lock re-enables itself.
  bool Reenabled = false;
  for (int I = 0; I < 512; ++I) {
    L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; });
    if (L.controller().state() == ElisionState::Elide) {
      Reenabled = true;
      break;
    }
  }
  EXPECT_TRUE(Reenabled);
}

//===- tests/ShardedKvStoreTest.cpp - Sharded KV store tests --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// kv/ShardedKvStore.h across the whole lock-policy portfolio: point ops
/// and scan consistency are typed over every policy; the resize-under-
/// readers and tombstone-reuse regressions run under SOLERO, the policy
/// whose optimistic readers make them dangerous.
///
//===----------------------------------------------------------------------===//

#include "kv/ShardedKvStore.h"
#include "workloads/LockPolicies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::kv;

namespace {

template <typename Policy> class ShardedKvStoreTest : public ::testing::Test {
protected:
  RuntimeContext Ctx;
};

using AllPolicies = ::testing::Types<TasukiPolicy, RwPolicy, BravoRwPolicy,
                                     SoleroPolicy, SeqLockPolicy>;

} // namespace

TYPED_TEST_SUITE(ShardedKvStoreTest, AllPolicies);

TYPED_TEST(ShardedKvStoreTest, PointOperationsRoundTrip) {
  ShardedKvStore<TypeParam> Store(this->Ctx, KvStoreConfig{4, 16});

  EXPECT_FALSE(Store.get(1).has_value());
  EXPECT_TRUE(Store.put(1, 100));
  EXPECT_FALSE(Store.put(1, 200)); // overwrite, not insert
  ASSERT_TRUE(Store.get(1).has_value());
  EXPECT_EQ(*Store.get(1), 200u);

  EXPECT_TRUE(Store.put(2, 300));
  EXPECT_EQ(Store.size(), 2u);

  EXPECT_TRUE(Store.remove(1));
  EXPECT_FALSE(Store.remove(1));
  EXPECT_FALSE(Store.get(1).has_value());
  EXPECT_EQ(Store.size(), 1u);

  // Reinsert after a tombstone: the slot revives.
  EXPECT_TRUE(Store.put(1, 400));
  EXPECT_EQ(*Store.get(1), 400u);
  EXPECT_TRUE(Store.quiesce());
}

TYPED_TEST(ShardedKvStoreTest, ScanAccountsForEveryLiveEntry) {
  ShardedKvStore<TypeParam> Store(this->Ctx, KvStoreConfig{4, 16});

  constexpr uint64_t Keys = 500;
  uint64_t ExpectedSum = 0;
  for (uint64_t K = 0; K < Keys; ++K) {
    EXPECT_TRUE(Store.put(K, K * 3));
    ExpectedSum += K * 3;
  }
  for (uint64_t K = 0; K < Keys; K += 5) {
    EXPECT_TRUE(Store.remove(K));
    ExpectedSum -= K * 3;
  }

  uint64_t ScannedLive = 0, ScannedSum = 0;
  for (unsigned S = 0; S < Store.shardCount(); ++S) {
    ShardTable::ScanStats St = Store.scanShard(S);
    ScannedLive += St.LiveEntries;
    ScannedSum += St.ValueSum;
  }
  EXPECT_EQ(ScannedLive, Store.size());
  EXPECT_EQ(ScannedLive, Keys - Keys / 5);
  EXPECT_EQ(ScannedSum, ExpectedSum);
  EXPECT_TRUE(Store.quiesce());
}

TYPED_TEST(ShardedKvStoreTest, KeysSpreadAcrossEveryShard) {
  ShardedKvStore<TypeParam> Store(this->Ctx, KvStoreConfig{16, 16});
  for (uint64_t K = 0; K < 2048; ++K)
    Store.put(K, K);
  for (unsigned S = 0; S < Store.shardCount(); ++S)
    EXPECT_GT(Store.shardTable(S).liveCount(), 0u)
        << "sequential keys never reached shard " << S;
}

// Deleting and reinserting must reuse tombstoned slots instead of growing
// the table: a same-size churn workload that doubled capacity on every
// load-factor trip would never stop allocating.
TEST(ShardedKvStore, TombstoneChurnDoesNotGrowTheTable) {
  RuntimeContext Ctx;
  ShardedKvStore<SoleroPolicy> Store(Ctx, KvStoreConfig{1, 64});

  // 20 live keys in a 64-slot shard: well under the 70% trigger.
  for (uint64_t K = 0; K < 20; ++K)
    Store.put(K, K);
  std::size_t Cap = Store.shardTable(0).capacity();
  EXPECT_EQ(Cap, 64u);

  // Thousands of delete/reinsert cycles. Same-key reinsertion revives the
  // tombstone in place; alternating keys exercise first-tombstone reuse.
  for (int Cycle = 0; Cycle < 3000; ++Cycle) {
    uint64_t K = static_cast<uint64_t>(Cycle % 20);
    EXPECT_TRUE(Store.remove(K));
    EXPECT_TRUE(Store.put(K, K + 1000));
  }
  // Live count is unchanged, and any resize the churn tripped must have
  // been a same-size tombstone purge, never a doubling.
  EXPECT_EQ(Store.size(), 20u);
  EXPECT_EQ(Store.shardTable(0).capacity(), Cap);
  // The leak oracle: exactly one pool cell per live entry after a drain.
  EXPECT_TRUE(Store.quiesce());
}

// Readers keep probing (GET + SCAN) while a writer forces repeated
// resizes; epoch reclamation must keep every retired table dereferenceable
// and validation must discard every torn read.
TEST(ShardedKvStore, ResizeUnderConcurrentReadersLosesNothing) {
  RuntimeContext Ctx;
  ShardedKvStore<SoleroPolicy> Store(Ctx, KvStoreConfig{2, 16});

  constexpr uint64_t Keys = 3000;
  constexpr uint64_t ValueTag = 0x5000000000000000ull;
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> BadReads{0};

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&, R] {
      uint64_t K = static_cast<uint64_t>(R);
      while (!Done.load(std::memory_order_acquire)) {
        auto V = Store.get(K % Keys);
        // A found key must carry the value its writer published — a torn
        // or stale-table read that escaped validation would not.
        if (V.has_value() && *V != (ValueTag | (K % Keys)))
          BadReads.fetch_add(1, std::memory_order_relaxed);
        if (K % 64 == 0)
          (void)Store.scanShard(static_cast<unsigned>(K) &
                                (Store.shardCount() - 1));
        ++K;
      }
    });

  for (uint64_t K = 0; K < Keys; ++K)
    EXPECT_TRUE(Store.put(K, ValueTag | K));
  Done.store(true, std::memory_order_release);
  for (auto &T : Readers)
    T.join();

  EXPECT_EQ(BadReads.load(), 0u);
  EXPECT_GT(Store.totalResizes(), 0u) << "growth workload never resized";
  EXPECT_EQ(Store.size(), Keys);
  for (uint64_t K = 0; K < Keys; ++K) {
    auto V = Store.get(K);
    ASSERT_TRUE(V.has_value()) << "key " << K << " lost across resizes";
    EXPECT_EQ(*V, ValueTag | K);
  }
  EXPECT_TRUE(Store.quiesce());
}

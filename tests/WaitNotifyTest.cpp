//===- tests/WaitNotifyTest.cpp - Object.wait / notify tests --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"
#include "locks/TasukiLock.h"
#include "runtime/SharedField.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::lockword;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  C.ParkMicros = std::chrono::microseconds(200);
  return C;
}

} // namespace

TEST(TasukiWaitNotify, ProducerConsumerHandshake) {
  RuntimeContext Ctx(quietConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> Queue{0}; // 0 = empty

  std::thread Consumer([&] {
    for (int Expect = 1; Expect <= 100; ++Expect) {
      L.enter(H);
      while (Queue.read() == 0)
        L.wait(H); // predicate loop: spurious returns are fine
      EXPECT_EQ(Queue.read(), Expect);
      Queue.write(0);
      L.notify(H, /*All=*/true);
      L.exit(H);
    }
  });
  std::thread Producer([&] {
    for (int I = 1; I <= 100; ++I) {
      L.enter(H);
      while (Queue.read() != 0)
        L.wait(H);
      Queue.write(I);
      L.notify(H, /*All=*/true);
      L.exit(H);
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Queue.read(), 0);
}

TEST(TasukiWaitNotify, WaitReleasesAndReacquires) {
  RuntimeContext Ctx(quietConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;
  std::atomic<int> Stage{0};
  std::thread Waiter([&] {
    L.enter(H);
    Stage.store(1);
    while (Stage.load() != 2)
      L.wait(H); // the lock is free while waiting
    EXPECT_TRUE(L.heldByCurrentThread(H)); // reacquired on return
    L.exit(H);
    Stage.store(3);
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  // The waiter holds nothing while asleep: we can take the monitor.
  L.enter(H);
  Stage.store(2);
  L.notify(H, /*All=*/true);
  L.exit(H);
  Waiter.join();
  EXPECT_EQ(Stage.load(), 3);
  EXPECT_EQ(H.word().load(), 0u); // deflated once the wait set drained
}

TEST(TasukiWaitNotify, WaitPreservesRecursion) {
  RuntimeContext Ctx(quietConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;
  std::atomic<bool> Notified{false};
  std::thread Waiter([&] {
    L.enter(H);
    L.enter(H);
    L.enter(H); // recursion depth 2 beyond the first
    while (!Notified.load())
      L.wait(H);
    EXPECT_TRUE(L.heldByCurrentThread(H));
    L.exit(H);
    L.exit(H);
    EXPECT_TRUE(L.heldByCurrentThread(H)); // still one hold left
    L.exit(H);
    EXPECT_FALSE(L.heldByCurrentThread(H));
  });
  // Let the waiter park, then notify while holding the monitor.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  L.enter(H);
  Notified.store(true);
  L.notify(H, /*All=*/true);
  L.exit(H);
  Waiter.join();
}

TEST(TasukiWaitNotify, NotifyWithEmptyWaitSetIsNoOp) {
  RuntimeContext Ctx(quietConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;
  L.enter(H);
  L.notify(H);
  L.notify(H, /*All=*/true);
  L.exit(H);
  EXPECT_EQ(H.word().load(), 0u); // never inflated
}

TEST(SoleroWaitNotify, HandshakeThroughMonitorHandle) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> Box{0};

  std::thread Consumer([&] {
    for (int Expect = 1; Expect <= 50; ++Expect) {
      L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
        while (Box.read() == 0)
          M.wait();
        EXPECT_EQ(Box.read(), Expect);
        Box.write(0);
        M.notifyAll();
      });
    }
  });
  std::thread Producer([&] {
    for (int I = 1; I <= 50; ++I) {
      L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
        while (Box.read() != 0)
          M.wait();
        Box.write(I);
        M.notifyAll();
      });
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Box.read(), 0);
}

TEST(SoleroWaitNotify, WaitEpisodeAdvancesCounterForSpanningReaders) {
  // A speculative reader spanning a wait-induced inflate/deflate episode
  // must observe a changed counter (the same Section 3.2 guarantee as for
  // contention-induced inflation).
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  L.synchronizedWrite(H, [] {}); // counter -> 0x100
  SoleroLock::ReadEntry E = L.readEnter(H, TS);
  ASSERT_FALSE(E.Holding);

  std::atomic<bool> Waiting{false};
  std::thread Waiter([&] {
    L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
      Waiting.store(true);
      M.wait(); // returns spuriously after a park tick; that is enough
    });
  });
  Waiter.join();
  // Fully released: deflated with an advanced counter.
  EXPECT_TRUE(soleroIsFree(H.word().load()));
  EXPECT_FALSE(L.validate(H, E.V));
  EXPECT_TRUE(Waiting.load());
}

TEST(SoleroWaitNotify, ElisionResumesAfterWaitEpisode) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  std::thread Waiter([&] {
    L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
      M.wait(); // spurious return after the park tick
    });
  });
  Waiter.join();
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(L.synchronizedReadOnly(H, [](ReadGuard &) { return 5; }), 5);
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 1u);
}

TEST(SoleroWaitNotify, ManyWaitersAllWake) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> Open{0};
  std::atomic<int> Woken{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&] {
      L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
        while (Open.read() == 0)
          M.wait();
      });
      Woken.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  L.synchronizedWrite(H, [&](SoleroLock::MonitorHandle &M) {
    Open.write(1);
    M.notifyAll();
  });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Woken.load(), 4);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}
